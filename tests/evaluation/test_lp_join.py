"""Unit tests for the Theorem 2.6 evaluation algorithm."""

import math

import pytest

from repro.core import collect_statistics, lp_bound
from repro.evaluation import (
    count_query,
    evaluate_with_partitioning,
    generic_join,
    theorem26_log2_budget,
)
from repro.query import parse_query


@pytest.fixture
def join_setup(graph_db):
    q = parse_query("Q(x,y,z) :- R(x,y), R(y,z)")
    stats = collect_statistics(q, graph_db, ps=[1.0, 2.0, math.inf])
    bound = lp_bound(stats, query=q)
    return q, graph_db, bound


class TestEvaluateWithPartitioning:
    def test_output_matches_direct_join(self, join_setup):
        q, db, bound = join_setup
        run = evaluate_with_partitioning(q, db, bound)
        assert run.output == generic_join(q, db).output

    def test_self_join_cross_parts_counted(self, join_setup):
        # the regression that motivated atom-level rewriting: the count
        # must include tuples whose two atoms fall in different parts
        q, db, bound = join_setup
        run = evaluate_with_partitioning(q, db, bound)
        assert run.count == count_query(q, db)

    def test_triangle(self, graph_db, triangle_query):
        stats = collect_statistics(
            triangle_query, graph_db, ps=[1.0, 2.0, math.inf]
        )
        bound = lp_bound(stats, query=triangle_query)
        run = evaluate_with_partitioning(triangle_query, graph_db, bound)
        assert run.count == count_query(triangle_query, graph_db)

    def test_within_budget(self, join_setup):
        q, db, bound = join_setup
        run = evaluate_with_partitioning(q, db, bound)
        assert run.within_budget()
        assert run.log2_budget >= bound.log2_bound  # budget ≥ bound

    def test_max_parts_guard(self, join_setup):
        q, db, bound = join_setup
        with pytest.raises(ValueError, match="max_parts"):
            evaluate_with_partitioning(q, db, bound, max_parts=1)

    def test_no_partitioning_when_only_l1_linf(self, graph_db):
        q = parse_query("Q(x,y,z) :- R(x,y), R(y,z)")
        stats = collect_statistics(q, graph_db, ps=[1.0, math.inf])
        bound = lp_bound(stats, query=q)
        run = evaluate_with_partitioning(q, db=graph_db, bound=bound)
        assert run.parts_evaluated == 1  # PANDA language already
        assert run.count == count_query(q, graph_db)


class TestBudget:
    def test_budget_adds_part_constant(self, join_setup):
        q, db, bound = join_setup
        budget = theorem26_log2_budget(bound)
        used_finite = [
            stat.p
            for stat, w in bound.used_statistics()
            if stat.p not in (1.0, math.inf)
        ]
        expected_c = sum(
            math.log2(math.ceil(2.0 ** p)) for p in used_finite
        )
        assert budget == pytest.approx(bound.log2_bound + expected_c)

    def test_budget_requires_certificate(self):
        from repro.core.conditionals import StatisticsSet
        from repro.core.lp_bound import lp_bound as lb

        unbounded = lb(StatisticsSet([]), variables=("x",), cone="polymatroid")
        with pytest.raises(ValueError):
            theorem26_log2_budget(unbounded)
