"""Fault tolerance of the supervised parallel Theorem 2.6 evaluator.

The contract under test: :func:`repro.evaluation.evaluate_parallel`
produces *exactly* the serial evaluation's results — rows, row order
through sinks, counts, part totals, and the ``nodes_visited`` meter —
for every sink mode, frontier block, and worker count, and keeps doing
so when workers raise, die without cleanup, hang past their deadline,
or silently corrupt their spilled segments.  Checkpoint-resume completes
an interrupted run from its manifest without re-evaluating finished
parts, and the fault injector's seeded plans are deterministic.

The workload is the ``TestRoutedPartitioning`` triangle fixture: a
heavy-tailed graph whose ℓ2 statistic forces real Lemma 2.5
partitioning (36 part combinations), so the fan-out, merge order, and
checkpoint machinery are all genuinely exercised.
"""

import json
import math

import pytest

from repro.core import collect_statistics, lp_bound
from repro.datasets import power_law_graph
from repro.evaluation import (
    FaultInjector,
    InjectedFault,
    PartFailedError,
    SupervisionPolicy,
    evaluate_parallel,
    evaluate_with_partitioning,
    parse_fault_spec,
)
from repro.evaluation.faults import FaultCommand
from repro.query import parse_query
from repro.relational import CountSink, Database, GroupCountSink, SpillSink
from repro.relational.chunkstore import ChunkStoreError, SegmentStore

#: No backoff sleeps: retries should be instantaneous in tests.
FAST = SupervisionPolicy(backoff_base=0.0, backoff_jitter=0.0)


@pytest.fixture(scope="module")
def setup():
    db = Database({"R": power_law_graph(200, 700, 0.6, seed=9)})
    query = parse_query("Q(x,y,z) :- R(x,y), R(y,z), R(z,x)")
    stats = collect_statistics(query, db, ps=[1.0, 2.0, math.inf])
    bound = lp_bound(stats, query=query)
    serial = evaluate_with_partitioning(query, db, bound)
    assert serial.parts_evaluated > 1, "fixture must exercise partitioning"
    return query, db, bound, serial


@pytest.fixture(scope="module")
def clean_run(setup):
    query, db, bound, _ = setup
    return evaluate_parallel(query, db, bound, workers=2, policy=FAST)


@pytest.fixture(scope="module")
def fat_part(clean_run):
    """Index of a part that spills at least one segment."""
    return next(o.index for o in clean_run.outcomes if o.n_rows > 0)


class TestSerialEquivalence:
    def test_clean_run_matches_serial(self, setup, clean_run):
        _, _, _, serial = setup
        assert clean_run.parts_evaluated == serial.parts_evaluated
        assert clean_run.nodes_visited == serial.nodes_visited
        assert clean_run.log2_budget == serial.log2_budget
        assert sorted(clean_run.output) == sorted(serial.output)
        assert all(o.status == "done" for o in clean_run.outcomes)
        assert all(o.attempts == 1 for o in clean_run.outcomes)
        assert clean_run.n_resumed == 0
        assert clean_run.n_retried == 0
        # ephemeral scratch directory leaves nothing behind
        assert clean_run.run_dir is None

    @pytest.mark.parametrize(
        "frontier_block,workers", [(None, 2), (7, 1), (7, 3)]
    )
    def test_blocks_and_worker_counts(self, setup, frontier_block, workers):
        query, db, bound, serial = setup
        run = evaluate_parallel(
            query,
            db,
            bound,
            workers=workers,
            frontier_block=frontier_block,
            policy=FAST,
        )
        assert run.parts_evaluated == serial.parts_evaluated
        assert run.nodes_visited == serial.nodes_visited
        assert sorted(run.output) == sorted(serial.output)

    def test_count_sink(self, setup):
        query, db, bound, serial = setup
        serial_sink, parallel_sink = CountSink(), CountSink()
        evaluate_with_partitioning(query, db, bound, sink=serial_sink)
        run = evaluate_parallel(
            query, db, bound, workers=2, sink=parallel_sink, policy=FAST
        )
        assert parallel_sink.total == serial_sink.total
        assert run.count == serial_sink.total
        assert run.output is None

    def test_group_count_sink(self, setup):
        query, db, bound, _ = setup
        group_vars = query.variables[:1]
        serial_sink = GroupCountSink(group_vars)
        parallel_sink = GroupCountSink(group_vars)
        evaluate_with_partitioning(query, db, bound, sink=serial_sink)
        evaluate_parallel(
            query, db, bound, workers=2, sink=parallel_sink, policy=FAST
        )
        assert parallel_sink.counts() == serial_sink.counts()

    def test_spill_sink_rows_and_order(self, setup, tmp_path):
        query, db, bound, _ = setup
        with SpillSink(tmp_path / "serial", chunk_rows=128) as serial_sink:
            evaluate_with_partitioning(query, db, bound, sink=serial_sink)
            with SpillSink(tmp_path / "par", chunk_rows=128) as parallel_sink:
                evaluate_parallel(
                    query,
                    db,
                    bound,
                    workers=3,
                    sink=parallel_sink,
                    # worker-side chunking differs from the final sink's:
                    # the merged stream must still be identical
                    chunk_rows=64,
                    policy=FAST,
                )
                assert parallel_sink.rows() == serial_sink.rows()


class TestFaultRecovery:
    def test_raise_and_exit_faults_retry_to_success(self, setup):
        query, db, bound, serial = setup
        injector = FaultInjector({(0, 0): "raise", (2, 0): "exit"})
        run = evaluate_parallel(
            query, db, bound, workers=2, injector=injector, policy=FAST
        )
        assert sorted(run.output) == sorted(serial.output)
        assert run.nodes_visited == serial.nodes_visited
        assert run.outcomes[0].attempts > 1
        assert any(
            "InjectedFault" in e for e in run.outcomes[0].errors
        )
        # the os._exit part (and any pool-mates it took down) retried
        assert run.outcomes[2].attempts > 1
        assert run.n_retried >= 2

    def test_hang_times_out_then_degrades(self, setup):
        query, db, bound, serial = setup
        injector = FaultInjector(
            {(1, 0): "hang", (1, 1): "hang"}, hang_seconds=30.0
        )
        policy = SupervisionPolicy(
            part_timeout=0.75,
            max_retries=1,
            backoff_base=0.0,
            backoff_jitter=0.0,
            fallback_frontier_block=16,
        )
        run = evaluate_parallel(
            query, db, bound, workers=2, injector=injector, policy=policy
        )
        outcome = run.outcomes[1]
        assert outcome.status == "degraded"
        assert sum("timed out" in e for e in outcome.errors) == 2
        assert run.n_degraded == 1
        # the degraded serial re-run is exact, so the merge still is
        assert sorted(run.output) == sorted(serial.output)
        assert run.nodes_visited == serial.nodes_visited

    def test_corruption_detected_and_retried(self, setup, fat_part):
        query, db, bound, serial = setup
        injector = FaultInjector({(fat_part, 0): "corrupt"})
        run = evaluate_parallel(
            query, db, bound, workers=2, injector=injector, policy=FAST
        )
        outcome = run.outcomes[fat_part]
        assert outcome.attempts == 2
        assert any("corrupt" in e for e in outcome.errors)
        assert sorted(run.output) == sorted(serial.output)

    def test_persistent_corruption_raises_with_part_id(
        self, setup, fat_part
    ):
        query, db, bound, _ = setup
        injector = FaultInjector(
            {(fat_part, attempt): "corrupt" for attempt in range(3)}
        )
        policy = SupervisionPolicy(
            max_retries=2,
            backoff_base=0.0,
            backoff_jitter=0.0,
            serial_fallback=False,
        )
        with pytest.raises(ChunkStoreError, match=f"part {fat_part}"):
            evaluate_parallel(
                query, db, bound, workers=2, injector=injector, policy=policy
            )

    def test_exhausted_non_corrupt_failure_raises_part_failed(self, setup):
        query, db, bound, _ = setup
        injector = FaultInjector(
            {(3, attempt): "raise" for attempt in range(2)}
        )
        policy = SupervisionPolicy(
            max_retries=1,
            backoff_base=0.0,
            backoff_jitter=0.0,
            serial_fallback=False,
        )
        with pytest.raises(PartFailedError, match="part 3") as info:
            evaluate_parallel(
                query, db, bound, workers=2, injector=injector, policy=policy
            )
        assert info.value.index == 3
        assert info.value.attempts == 2


class TestCheckpointResume:
    def test_killed_run_resumes_bit_identical(self, setup, tmp_path):
        query, db, bound, _ = setup
        run_dir = tmp_path / "run"
        # every attempt of part 3 dies without cleanup; no fallback —
        # the run aborts mid-flight with a manifest on disk
        injector = FaultInjector(
            {(3, attempt): "exit" for attempt in range(3)}
        )
        policy = SupervisionPolicy(
            max_retries=2,
            backoff_base=0.0,
            backoff_jitter=0.0,
            serial_fallback=False,
        )
        with pytest.raises(PartFailedError):
            evaluate_parallel(
                query,
                db,
                bound,
                workers=2,
                injector=injector,
                policy=policy,
                run_dir=run_dir,
            )
        manifest = json.loads((run_dir / "manifest.json").read_text())
        done_before = {
            int(k)
            for k, v in manifest["parts"].items()
            if v["status"] == "done"
        }
        assert done_before, "interrupted run must checkpoint finished parts"
        attempts_before = {
            index: manifest["parts"][str(index)]["attempts"]
            for index in done_before
        }

        with SpillSink(tmp_path / "serial", chunk_rows=128) as serial_sink:
            evaluate_with_partitioning(query, db, bound, sink=serial_sink)
            with SpillSink(tmp_path / "par", chunk_rows=128) as final_sink:
                resumed = evaluate_parallel(
                    query,
                    db,
                    bound,
                    workers=2,
                    sink=final_sink,
                    run_dir=run_dir,
                    resume=True,
                    policy=FAST,
                )
                # spill round-trip bit-identical: same rows, same order
                assert final_sink.rows() == serial_sink.rows()
        assert resumed.n_resumed == len(done_before)
        for index in done_before:
            outcome = resumed.outcomes[index]
            # finished parts were not re-evaluated: status says resumed
            # and the attempt counter is the checkpointed one, untouched
            assert outcome.status == "resumed"
            assert outcome.attempts == attempts_before[index]

    def test_resumed_meters_match_serial(self, setup, tmp_path):
        query, db, bound, serial = setup
        run_dir = tmp_path / "run"
        injector = FaultInjector({(5, 0): "raise"})
        policy = SupervisionPolicy(
            max_retries=0,
            backoff_base=0.0,
            backoff_jitter=0.0,
            serial_fallback=False,
        )
        with pytest.raises(PartFailedError):
            evaluate_parallel(
                query,
                db,
                bound,
                workers=2,
                injector=injector,
                policy=policy,
                run_dir=run_dir,
            )
        resumed = evaluate_parallel(
            query, db, bound, workers=2, run_dir=run_dir, resume=True,
            policy=FAST,
        )
        assert sorted(resumed.output) == sorted(serial.output)
        # node meters of resumed parts come from the checkpoint, so the
        # total still equals the serial meter exactly
        assert resumed.nodes_visited == serial.nodes_visited
        assert resumed.parts_evaluated == serial.parts_evaluated

    def test_existing_manifest_requires_resume_flag(self, setup, tmp_path):
        query, db, bound, _ = setup
        run_dir = tmp_path / "run"
        evaluate_parallel(
            query, db, bound, workers=1, run_dir=run_dir, policy=FAST
        )
        with pytest.raises(ValueError, match="resume=True"):
            evaluate_parallel(
                query, db, bound, workers=1, run_dir=run_dir, policy=FAST
            )

    def test_fingerprint_mismatch_rejected(self, setup, tmp_path):
        query, db, bound, _ = setup
        run_dir = tmp_path / "run"
        evaluate_parallel(
            query, db, bound, workers=1, run_dir=run_dir, policy=FAST
        )
        with pytest.raises(ValueError, match="different run configuration"):
            evaluate_parallel(
                query,
                db,
                bound,
                workers=1,
                frontier_block=7,
                run_dir=run_dir,
                resume=True,
                policy=FAST,
            )

    def test_foreign_manifest_rejected(self, setup, tmp_path):
        query, db, bound, _ = setup
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "manifest.json").write_text('{"format": "other"}')
        with pytest.raises(ChunkStoreError, match="not a parallel-run"):
            evaluate_parallel(
                query,
                db,
                bound,
                workers=1,
                run_dir=run_dir,
                resume=True,
                policy=FAST,
            )


class TestFaultInjector:
    def test_seeded_plan_is_deterministic(self):
        first = FaultInjector.from_seed(7, 36, rate=0.4)
        second = FaultInjector.from_seed(7, 36, rate=0.4)
        assert first.plan == second.plan
        assert len(first.plan) > 0
        assert FaultInjector.from_seed(8, 36, rate=0.4).plan != first.plan

    def test_seeded_run_outcomes_are_deterministic(self, setup):
        query, db, bound, serial = setup
        runs = [
            evaluate_parallel(
                query,
                db,
                bound,
                workers=2,
                injector=FaultInjector.from_seed(
                    11, 36, rate=0.2, kinds=("raise",)
                ),
                policy=FAST,
            )
            for _ in range(2)
        ]
        for run in runs:
            assert sorted(run.output) == sorted(serial.output)
        first, second = runs
        assert [o.attempts for o in first.outcomes] == [
            o.attempts for o in second.outcomes
        ]
        assert [o.errors for o in first.outcomes] == [
            o.errors for o in second.outcomes
        ]

    def test_command_resolution(self):
        injector = FaultInjector({(2, 1): "hang"}, hang_seconds=5.0)
        assert injector.command_for(2, 0) is None
        command = injector.command_for(2, 1)
        assert command.kind == "hang"
        assert command.hang_seconds == 5.0
        assert injector.resolve(100) is injector

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultInjector({(0, 0): "melt"})
        with pytest.raises(ValueError, match="unknown fault kinds"):
            FaultInjector.from_seed(1, 4, kinds=("melt",))

    def test_parse_explicit_spec(self):
        injector = parse_fault_spec("part=3:hang, part=5:exit")
        assert injector.plan == {(3, 0): "hang", (5, 0): "exit"}

    def test_parse_seeded_spec_binds_lazily(self):
        spec = parse_fault_spec("seed=7,rate=0.5,kinds=raise+exit,hang=2")
        assert len(spec) == 0  # unbound until the part count is known
        bound_a = spec.resolve(24)
        bound_b = spec.resolve(24)
        assert bound_a.plan == bound_b.plan
        assert bound_a.plan
        assert set(bound_a.plan.values()) <= {"raise", "exit"}
        assert bound_a.hang_seconds == 2.0

    def test_parse_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="KEY=VALUE"):
            parse_fault_spec("bogus")
        with pytest.raises(ValueError, match="INDEX:KIND"):
            parse_fault_spec("part=3:melt")
        with pytest.raises(ValueError, match="unknown fault spec field"):
            parse_fault_spec("frequency=2")
        with pytest.raises(ValueError, match="mixes"):
            parse_fault_spec("part=3:hang,seed=1")

    def test_corrupt_command_truncates_last_segment(self, tmp_path):
        import numpy as np

        store = SegmentStore(tmp_path, 1)
        store.write([np.arange(64)])
        (path,) = store.segments()
        FaultCommand("corrupt", 0, 0).trigger_after_spill([str(path)])
        with pytest.raises(ChunkStoreError, match="corrupt or truncated"):
            store.read(path)

    def test_corrupt_command_without_segments_raises(self):
        with pytest.raises(InjectedFault, match="no segment"):
            FaultCommand("corrupt", 4, 1).trigger_after_spill([])
