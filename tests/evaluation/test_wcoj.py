"""Unit tests for the worst-case-optimal join."""


import pytest

from repro.evaluation import count_query, evaluate_left_deep, generic_join
from repro.query import parse_query
from repro.relational import Database, Relation


class TestCorrectness:
    def test_matches_hash_join_on_one_join(self, two_table_db, one_join_query):
        wcoj = generic_join(one_join_query, two_table_db).output
        reference = evaluate_left_deep(one_join_query, two_table_db)
        assert wcoj == reference

    def test_matches_hash_join_on_triangle(self, graph_db, triangle_query):
        wcoj = generic_join(triangle_query, graph_db).output
        reference = evaluate_left_deep(triangle_query, graph_db)
        assert wcoj == reference

    def test_all_orders_agree(self, graph_db, triangle_query):
        import itertools

        counts = set()
        for order in itertools.permutations(("x", "y", "z")):
            counts.add(count_query(triangle_query, graph_db, order=order))
        assert len(counts) == 1

    def test_rejects_bad_order(self, graph_db, triangle_query):
        with pytest.raises(ValueError, match="permutation"):
            generic_join(triangle_query, graph_db, order=("x", "y"))

    def test_empty_relation_empty_output(self, triangle_query):
        db = Database({"R": Relation(("x", "y"), [])})
        assert count_query(triangle_query, db) == 0

    def test_repeated_variable_atom(self):
        db = Database({"R": Relation(("a", "b"), [(1, 1), (1, 2), (2, 2)])})
        q = parse_query("Q(x) :- R(x,x)")
        assert set(generic_join(q, db).output) == {(1,), (2,)}

    def test_output_attribute_order_is_query_order(self, graph_db):
        q = parse_query("Q(z,x,y) :- R(x,y), R(y,z)")
        out = generic_join(q, graph_db).output
        assert out.attributes == ("x", "y", "z")  # first-appearance order

    def test_unary_atoms_filter(self):
        db = Database(
            {
                "R": Relation(("a", "b"), [(1, 2), (3, 4)]),
                "S": Relation(("a",), [(1,)]),
            }
        )
        q = parse_query("Q(x,y) :- R(x,y), S(x)")
        assert set(generic_join(q, db).output) == {(1, 2)}


class TestMetering:
    def test_nodes_visited_bounded_by_agm(self, graph_db, triangle_query):
        from repro.estimators import agm_bound

        run = generic_join(triangle_query, graph_db)
        agm = agm_bound(triangle_query, graph_db)
        # WCOJ search tree ≤ #vars · AGM (loose but meaningful)
        assert run.nodes_visited <= 3 * 2 ** agm

    def test_nodes_at_least_output(self, graph_db, triangle_query):
        run = generic_join(triangle_query, graph_db)
        assert run.nodes_visited >= run.count

    def test_count_property(self, two_table_db, one_join_query):
        run = generic_join(one_join_query, two_table_db)
        assert run.count == len(run.output)


class TestCountQuery:
    def test_path_count(self):
        r = Relation(("a", "b"), [(1, 2), (2, 3), (2, 4)])
        db = Database({"R": r})
        q = parse_query("Q(x,y,z) :- R(x,y), R(y,z)")
        assert count_query(q, db) == 2  # 1→2→3, 1→2→4

    def test_four_cycle(self):
        rows = [(0, 1), (1, 0)]
        db = Database({"R": Relation(("a", "b"), rows)})
        q = parse_query("Q(a,b,c,d) :- R(a,b), R(b,c), R(c,d), R(d,a)")
        assert count_query(q, db) == 2  # 0101 and 1010
