"""Resource governance: budgets, deadlines, cancellation, degradation.

The contract under test: a *governed* evaluation returns exactly the
rows, row order, counts, and ``nodes_visited`` of an ungoverned one —
every degradation-ladder rung reuses an invariance the engine already
proves (contiguous re-slicing of the fixed candidate order, sink
re-routing) — and when a budget genuinely cannot be met the run stops
with a typed :class:`~repro.evaluation.ResourceGovernanceError` whose
snapshot names where it stood, instead of an OOM kill or a bare
``KeyboardInterrupt``.  The memory-probe and clock hooks make every
scenario deterministic; two star-workload tests additionally pin the
*real* ``tracemalloc`` probe: an undersized hard cap fires before
traced memory exceeds the cap by more than one block of work, and a
fan-out-1024 star completes bit-identically under pressure by walking
the ladder.
"""

import json
import math
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import collect_statistics, lp_bound
from repro.datasets import power_law_graph, star_database, star_query
from repro.evaluation import (
    CancellationToken,
    EscalatingSink,
    EvaluationBudget,
    EvaluationCancelled,
    EvaluationDeadlineExceeded,
    EvaluationGovernor,
    FaultInjector,
    MemoryBudgetExceeded,
    ResourceGovernanceError,
    SupervisionPolicy,
    budget_from_spec,
    evaluate_parallel,
    evaluate_with_partitioning,
    generic_join,
    generic_join_tuples,
    parse_fault_spec,
    parse_memory_size,
    semijoin_reduce,
)
from repro.evaluation.faults import GOVERNOR_KINDS, FaultCommand, InjectedFault
from repro.query import parse_query
from repro.relational import CountSink, Database, Relation, SpillSink

SETTINGS = settings(max_examples=10, deadline=None)

#: No backoff sleeps: retries should be instantaneous in tests.
FAST = SupervisionPolicy(backoff_base=0.0, backoff_jitter=0.0)

KB = 1 << 10
MB = 1 << 20


class SteppedProbe:
    """A memory probe replaying a schedule (last value repeats)."""

    def __init__(self, *values):
        self.values = list(values)
        self.calls = 0

    def __call__(self):
        index = min(self.calls, len(self.values) - 1)
        self.calls += 1
        return self.values[index]


def pressure_probe(level=10 * MB):
    """Baseline 0, then constant ``level``: every checkpoint is under
    soft pressure (for budgets whose soft watermark is below it)."""
    return SteppedProbe(0, level)


class SteppedClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# ---------------------------------------------------------------------------
# Specs and validation


class TestBudgetSpecs:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1024", 1024),
            ("64K", 64 * KB),
            ("1.5M", int(1.5 * MB)),
            ("2G", 2 << 30),
            ("2GB", 2 << 30),
            (" 512kb ", 512 * KB),
        ],
    )
    def test_parse_memory_size(self, text, expected):
        assert parse_memory_size(text) == expected

    @pytest.mark.parametrize("text", ["", "x", "12Q", "-4M", "0"])
    def test_parse_memory_size_rejects(self, text):
        with pytest.raises(ValueError):
            parse_memory_size(text)

    def test_bare_hard_cap_gets_half_soft(self):
        budget = budget_from_spec(memory="256M")
        assert budget.hard_memory_bytes == 256 * MB
        assert budget.soft_memory_bytes == 128 * MB

    def test_soft_colon_hard(self):
        budget = budget_from_spec(memory="64M:1G", deadline=30.0)
        assert budget.soft_memory_bytes == 64 * MB
        assert budget.hard_memory_bytes == 1 << 30
        assert budget.deadline_seconds == 30.0

    def test_nothing_given_is_none(self):
        assert budget_from_spec() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            EvaluationBudget(soft_memory_bytes=2 * MB, hard_memory_bytes=MB)
        with pytest.raises(ValueError):
            EvaluationBudget(deadline_seconds=0.0)
        with pytest.raises(ValueError):
            EvaluationBudget(min_frontier_block=0)
        with pytest.raises(ValueError):
            EvaluationBudget(
                min_frontier_block=256, initial_frontier_block=64
            )

    def test_governs_properties(self):
        assert not EvaluationBudget().governs_anything
        assert EvaluationBudget(deadline_seconds=1.0).governs_anything
        assert EvaluationBudget(hard_memory_bytes=MB).governs_memory

    def test_apportion_replaces_only_deadline(self):
        budget = EvaluationBudget(
            soft_memory_bytes=MB, hard_memory_bytes=2 * MB,
            deadline_seconds=100.0,
        )
        part = budget.apportion(3.5)
        assert part.deadline_seconds == 3.5
        assert part.soft_memory_bytes == MB
        assert part.hard_memory_bytes == 2 * MB


# ---------------------------------------------------------------------------
# Governor units (fake probe / fake clock)


class TestGovernorUnits:
    def budget(self, **kw):
        kw.setdefault("soft_memory_bytes", MB)
        kw.setdefault("hard_memory_bytes", 1 << 40)
        return EvaluationBudget(**kw)

    def test_ladder_halves_from_requested_block(self):
        gov = EvaluationGovernor(
            self.budget(min_frontier_block=64),
            memory_probe=pressure_probe(),
        )
        assert gov.effective_block(512) == 512
        for expected in (256, 128, 64, 64):
            gov.checkpoint()
            assert gov.effective_block(512) == expected
        assert gov.ladder == (
            "frontier_block 512→256",
            "frontier_block 256→128",
            "frontier_block 128→64",
        )

    def test_unblocked_request_capped_then_laddered(self):
        gov = EvaluationGovernor(
            self.budget(initial_frontier_block=4096),
            memory_probe=pressure_probe(),
        )
        assert gov.effective_block(None) == 4096
        gov.checkpoint()
        assert gov.effective_block(None) == 2048

    def test_ungoverned_memory_leaves_block_alone(self):
        gov = EvaluationGovernor(
            EvaluationBudget(deadline_seconds=100.0),
            clock=SteppedClock(),
        )
        assert gov.effective_block(None) is None
        assert gov.effective_block(7) == 7

    def test_ladder_escalates_sink_after_block_floor(self, tmp_path):
        gov = EvaluationGovernor(
            self.budget(min_frontier_block=64),
            memory_probe=pressure_probe(),
        )
        sink = EscalatingSink(tmp_path / "esc")
        sink.open(("x", "y"))
        gov.register_sink(sink)
        gov.effective_block(128)
        gov.checkpoint()  # 128 -> 64
        assert not sink.escalated
        gov.checkpoint()  # at the floor: rung 2
        assert sink.escalated
        assert gov.ladder[-1] == "sink materialize→spill"
        gov.checkpoint()  # rung 3: nothing left, no error below hard cap
        sink.close()

    def test_non_escalatable_sink_never_enrolls(self):
        gov = EvaluationGovernor(
            self.budget(), memory_probe=pressure_probe()
        )
        gov.register_sink(CountSink())
        gov.effective_block(128)
        for _ in range(5):
            gov.checkpoint()  # runs out of rungs without crashing
        assert all(step.startswith("frontier_block") for step in gov.ladder)

    def test_hard_cap_raises_with_snapshot(self):
        probe = SteppedProbe(0, 512 * KB, 3 * MB)
        gov = EvaluationGovernor(
            EvaluationBudget(soft_memory_bytes=MB, hard_memory_bytes=2 * MB),
            memory_probe=probe,
            phase="unit",
        )
        gov.set_part(4)
        gov.register_output(lambda: 17)
        gov.checkpoint(nodes_visited=100)  # 512K: fine
        with pytest.raises(MemoryBudgetExceeded) as err:
            gov.checkpoint(nodes_visited=250)
        snapshot = err.value.snapshot
        assert snapshot.reason == "hard memory cap reached"
        assert snapshot.phase == "unit"
        assert snapshot.part_index == 4
        assert snapshot.nodes_visited == 250
        assert snapshot.rows_emitted == 17
        assert snapshot.memory_bytes == 3 * MB
        assert snapshot.peak_memory_bytes == 3 * MB
        assert snapshot.hard_memory_bytes == 2 * MB
        assert "hard memory cap" in snapshot.describe()

    def test_deadline_uses_injected_clock(self):
        clock = SteppedClock()
        gov = EvaluationGovernor(
            EvaluationBudget(deadline_seconds=10.0), clock=clock
        )
        clock.now = 9.0
        gov.checkpoint(nodes_visited=5)
        assert gov.remaining_seconds() == pytest.approx(1.0)
        clock.now = 10.5
        with pytest.raises(EvaluationDeadlineExceeded) as err:
            gov.checkpoint(nodes_visited=9)
        assert err.value.snapshot.nodes_visited == 9
        assert err.value.snapshot.elapsed_seconds == pytest.approx(10.5)
        assert gov.remaining_seconds() == 0.0

    def test_cancellation_token(self):
        token = CancellationToken()
        gov = EvaluationGovernor(token=token)
        gov.checkpoint()
        token.cancel()
        with pytest.raises(EvaluationCancelled) as err:
            gov.checkpoint(nodes_visited=3)
        assert err.value.snapshot.reason == "cancelled"
        assert err.value.snapshot.nodes_visited == 3

    def test_commit_nodes_folds_into_meter(self):
        token = CancellationToken()
        gov = EvaluationGovernor(token=token)
        gov.commit_nodes(100)
        gov.commit_nodes(50)
        token.cancel()
        with pytest.raises(EvaluationCancelled) as err:
            gov.checkpoint(nodes_visited=7)
        assert err.value.snapshot.nodes_visited == 157

    def test_bias_shifts_memory_and_clock(self):
        clock = SteppedClock()
        gov = EvaluationGovernor(
            EvaluationBudget(
                soft_memory_bytes=MB,
                hard_memory_bytes=2 * MB,
                deadline_seconds=100.0,
            ),
            memory_probe=SteppedProbe(0),
            clock=clock,
        )
        gov.checkpoint()  # no pressure, no skew
        gov.bias(memory_bytes=3 * MB)
        with pytest.raises(MemoryBudgetExceeded):
            gov.checkpoint()
        gov = EvaluationGovernor(
            EvaluationBudget(deadline_seconds=100.0), clock=clock
        )
        gov.bias(clock_seconds=200.0)
        with pytest.raises(EvaluationDeadlineExceeded):
            gov.checkpoint()

    def test_default_probe_rebaselines_across_tracemalloc_flip(self):
        """A governor built *before* a metering harness starts
        tracemalloc must govern the traced run: comparing traced bytes
        against the RSS baseline captured at construction would leave
        growth pinned at zero and silently disable memory governance
        (the E14 driver meters every governed run this way)."""
        import tracemalloc

        assert not tracemalloc.is_tracing()
        budget = EvaluationBudget(
            soft_memory_bytes=64 * KB, hard_memory_bytes=1 << 40
        )
        gov = EvaluationGovernor(budget)  # baseline sampled from RSS
        gov.effective_block(1024)
        tracemalloc.start()
        try:
            blob = bytearray(8 * MB)  # traced growth past the watermark
            gov.checkpoint()
        finally:
            tracemalloc.stop()
        assert blob is not None
        assert gov.ladder == ("frontier_block 1024→512",)

    def test_errors_pickle_with_snapshot(self):
        gov = EvaluationGovernor(
            EvaluationBudget(soft_memory_bytes=MB, hard_memory_bytes=MB),
            memory_probe=SteppedProbe(0, 5 * MB),
        )
        with pytest.raises(MemoryBudgetExceeded) as err:
            gov.checkpoint(nodes_visited=12)
        clone = pickle.loads(pickle.dumps(err.value))
        assert isinstance(clone, MemoryBudgetExceeded)
        assert clone.snapshot == err.value.snapshot
        assert isinstance(clone, ResourceGovernanceError)


class TestEscalatingSink:
    ROWS = [(i, i * 2) for i in range(10_000)]

    def emit(self, sink, escalate_after=None):
        sink.open(("x", "y"))
        for start in range(0, len(self.ROWS), 1000):
            sink.append_rows(self.ROWS[start : start + 1000])
            if escalate_after is not None and start >= escalate_after:
                sink.escalate()
        return sink.rows()

    @pytest.mark.parametrize("escalate_after", [None, 0, 3000, 9000])
    def test_rows_identical_wherever_escalation_lands(
        self, tmp_path, escalate_after
    ):
        with EscalatingSink(tmp_path / "esc", chunk_rows=512) as sink:
            rows = self.emit(sink, escalate_after)
            assert rows == self.ROWS
            assert sink.n_rows == len(self.ROWS)
            assert sink.escalated == (escalate_after is not None)
            relation = sink.relation("out")
            assert list(relation) == self.ROWS

    def test_escalate_before_open_is_deferred(self, tmp_path):
        with EscalatingSink(tmp_path / "esc") as sink:
            sink.escalate()
            assert not sink.escalated
            sink.open(("x",))
            assert sink.escalated  # pending escalation fired at open
            sink.append_rows([(1,), (2,)])
            assert sink.rows() == [(1,), (2,)]

    def test_escalate_is_idempotent(self, tmp_path):
        with EscalatingSink(tmp_path / "esc") as sink:
            sink.open(("x",))
            sink.append_rows([(1,)])
            sink.escalate()
            sink.escalate()
            assert sink.rows() == [(1,)]

    def test_zero_variable_schema_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="CountSink"):
            EscalatingSink(tmp_path / "esc").open(())

    def test_close_removes_spilled_segments(self, tmp_path):
        target = tmp_path / "esc"
        sink = EscalatingSink(target)
        sink.open(("x",))
        sink.append_rows([(1,), (2,)])
        sink.escalate()
        sink.close()
        assert not list(target.glob("segment-*.npz"))


# ---------------------------------------------------------------------------
# Governed serial evaluation is bit-identical


TRIANGLE = parse_query("Q(x,y,z) :- R(x,y), R(y,z), R(z,x)")


@pytest.fixture(scope="module")
def routed():
    db = Database({"R": power_law_graph(150, 500, 0.6, seed=9)})
    stats = collect_statistics(TRIANGLE, db, ps=[1.0, 2.0, math.inf])
    bound = lp_bound(stats, query=TRIANGLE)
    serial = evaluate_with_partitioning(TRIANGLE, db, bound)
    assert serial.parts_evaluated > 1, "fixture must exercise partitioning"
    return db, bound, serial


def forced_ladder_budget(**kw):
    """Soft pressure at every checkpoint, hard cap far away."""
    kw.setdefault("soft_memory_bytes", KB)
    kw.setdefault("hard_memory_bytes", 1 << 40)
    return EvaluationBudget(**kw)


class TestGovernedEquivalence:
    @pytest.mark.parametrize("frontier_block", [None, 1, 7, 64])
    def test_generic_join_under_full_ladder(self, routed, frontier_block):
        db, _, _ = routed
        reference = generic_join(TRIANGLE, db, frontier_block=frontier_block)
        gov = EvaluationGovernor(
            forced_ladder_budget(), memory_probe=pressure_probe()
        )
        run = generic_join(
            TRIANGLE, db, frontier_block=frontier_block, governor=gov
        )
        assert list(run.output) == list(reference.output)
        assert run.nodes_visited == reference.nodes_visited

    def test_partitioned_run_under_full_ladder(self, routed):
        db, bound, serial = routed
        gov = EvaluationGovernor(
            forced_ladder_budget(), memory_probe=pressure_probe()
        )
        run = evaluate_with_partitioning(TRIANGLE, db, bound, governor=gov)
        assert list(run.output) == list(serial.output)
        assert run.nodes_visited == serial.nodes_visited
        assert run.parts_evaluated == serial.parts_evaluated
        assert gov.ladder  # pressure genuinely degraded something

    def test_escalating_sink_matches_materialized(self, routed, tmp_path):
        db, bound, serial = routed
        gov = EvaluationGovernor(
            forced_ladder_budget(), memory_probe=pressure_probe()
        )
        with EscalatingSink(tmp_path / "esc", chunk_rows=128) as sink:
            run = evaluate_with_partitioning(
                TRIANGLE, db, bound, sink=sink, governor=gov
            )
            assert sink.escalated
            assert sink.rows() == list(serial.output)
        assert run.nodes_visited == serial.nodes_visited
        assert "sink materialize→spill" in gov.ladder

    def test_spill_sink_under_full_ladder(self, routed, tmp_path):
        db, bound, serial = routed
        gov = EvaluationGovernor(
            forced_ladder_budget(), memory_probe=pressure_probe()
        )
        with SpillSink(tmp_path / "spill", chunk_rows=128) as sink:
            evaluate_with_partitioning(
                TRIANGLE, db, bound, sink=sink, governor=gov
            )
            assert sink.rows() == list(serial.output)

    def test_count_sink_under_full_ladder(self, routed):
        db, bound, serial = routed
        gov = EvaluationGovernor(
            forced_ladder_budget(), memory_probe=pressure_probe()
        )
        sink = CountSink()
        evaluate_with_partitioning(
            TRIANGLE, db, bound, sink=sink, governor=gov
        )
        assert sink.total == serial.count

    def test_tuples_engine_cancels_cooperatively(self):
        db = star_database(64, num_hubs=4)
        token = CancellationToken()
        token.cancel()
        gov = EvaluationGovernor(token=token)
        with pytest.raises(EvaluationCancelled):
            generic_join_tuples(star_query(2), db, governor=gov)

    def test_semijoin_reduce_cancels_cooperatively(self):
        db = Database(
            {
                "R": Relation(("a", "b"), [(1, 2), (2, 3)]),
                "S": Relation(("a", "b"), [(2, 4), (3, 5)]),
            }
        )
        query = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
        token = CancellationToken()
        token.cancel()
        gov = EvaluationGovernor(token=token)
        with pytest.raises(EvaluationCancelled):
            semijoin_reduce(query, db, governor=gov)

    @SETTINGS
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=18
        ),
        st.sampled_from([None, 1, 7]),
    )
    def test_random_graphs_identical_under_pressure(self, pairs, block):
        db = Database({"R": Relation(("a", "b"), pairs)})
        reference = generic_join(TRIANGLE, db, frontier_block=block)
        gov = EvaluationGovernor(
            forced_ladder_budget(), memory_probe=pressure_probe()
        )
        run = generic_join(TRIANGLE, db, frontier_block=block, governor=gov)
        assert list(run.output) == list(reference.output)
        assert run.nodes_visited == reference.nodes_visited


# ---------------------------------------------------------------------------
# The real probe on the star workload


STAR = star_query(2)


class TestStarUnderRealBudget:
    def test_undersized_hard_cap_raises_not_oom(self):
        """The materialized output alone exceeds the cap: the governor
        must stop the run, before memory exceeds the cap by more than
        roughly one block of work (never an unbounded overshoot)."""
        import tracemalloc

        db = star_database(64, num_hubs=256)  # 16384 output rows ≈ 384K
        hard = 256 * KB
        budget = EvaluationBudget(
            soft_memory_bytes=128 * KB, hard_memory_bytes=hard
        )
        observed = []
        tracemalloc.start()
        try:
            from repro.evaluation.governor import default_memory_probe

            def probe():
                value = default_memory_probe()
                observed.append(value)
                return value

            gov = EvaluationGovernor(budget, memory_probe=probe)
            with pytest.raises(MemoryBudgetExceeded) as err:
                generic_join(STAR, db, governor=gov)
        finally:
            tracemalloc.stop()
        snapshot = err.value.snapshot
        assert snapshot.nodes_visited > 0
        assert snapshot.peak_memory_bytes >= hard
        # bounded overshoot: at most the baseline plus ~one
        # initial-frontier-block slice of temporaries (~1.2 MB here),
        # far below the full materialization this run was heading for
        assert max(observed) - observed[0] < hard + 2 * MB

    @pytest.mark.parametrize("mode", ["materialize", "count", "spill"])
    def test_fan_out_1024_completes_via_ladder(self, mode, tmp_path):
        # tracemalloc makes the probe measure traced growth rather than
        # RSS growth: after earlier tests the allocator holds recycled
        # pages, so RSS alone may never cross the soft watermark even
        # though the run allocates well past it.
        import tracemalloc

        db = star_database(1024, num_hubs=1)
        reference = generic_join(STAR, db, frontier_block=4096)
        budget = EvaluationBudget(
            soft_memory_bytes=128 * KB,
            hard_memory_bytes=64 * MB,
            min_frontier_block=1024,
        )
        tracemalloc.start()
        try:
            gov = EvaluationGovernor(budget)
            if mode == "materialize":
                with EscalatingSink(tmp_path / "esc", chunk_rows=4096) as sink:
                    run = generic_join(STAR, db, sink=sink, governor=gov)
                    assert sink.rows() == list(reference.output)
            elif mode == "count":
                sink = CountSink()
                run = generic_join(STAR, db, sink=sink, governor=gov)
                assert sink.total == reference.count
            else:
                with SpillSink(tmp_path / "spill", chunk_rows=4096) as sink:
                    run = generic_join(STAR, db, sink=sink, governor=gov)
                    assert sink.rows() == list(reference.output)
        finally:
            tracemalloc.stop()
        assert run.nodes_visited == reference.nodes_visited
        assert gov.ladder, "the budget should have forced degradation"

    @pytest.mark.parametrize("workers", [1, 2])
    def test_fan_out_1024_parallel_governed(self, workers):
        db = star_database(1024, num_hubs=1)
        reference = generic_join(STAR, db, frontier_block=4096)
        stats = collect_statistics(STAR, db, ps=[1.0, 2.0, math.inf])
        bound = lp_bound(stats, query=STAR)
        budget = EvaluationBudget(
            soft_memory_bytes=512 * KB,
            hard_memory_bytes=1 << 30,
            min_frontier_block=1024,
        )
        run = evaluate_parallel(
            STAR, db, bound, workers=workers, policy=FAST, budget=budget
        )
        assert sorted(run.output) == sorted(reference.output)
        assert run.nodes_visited == reference.nodes_visited


# ---------------------------------------------------------------------------
# Parallel supervision under governance


class TestParallelGovernance:
    def test_global_deadline_stops_run_with_manifest(self, routed, tmp_path):
        db, bound, _ = routed
        run_dir = tmp_path / "run"
        budget = EvaluationBudget(deadline_seconds=1e-6)
        with pytest.raises(EvaluationDeadlineExceeded) as err:
            evaluate_parallel(
                TRIANGLE,
                db,
                bound,
                workers=2,
                policy=FAST,
                run_dir=run_dir,
                budget=budget,
            )
        assert err.value.snapshot.run_dir == str(run_dir)
        # the checkpoint manifest survives for --resume
        assert (run_dir / "manifest.json").exists()

    def test_deadline_snapshot_names_ephemeral_run_dir(self, routed):
        db, bound, _ = routed
        with pytest.raises(EvaluationDeadlineExceeded) as err:
            evaluate_parallel(
                TRIANGLE,
                db,
                bound,
                workers=2,
                policy=FAST,
                budget=EvaluationBudget(deadline_seconds=1e-6),
            )
        run_dir = err.value.snapshot.run_dir
        assert run_dir is not None
        import pathlib

        assert (pathlib.Path(run_dir) / "manifest.json").exists()

    def test_cancel_then_resume_is_bit_identical(self, routed, tmp_path):
        db, bound, serial = routed
        run_dir = tmp_path / "run"

        class AfterParts(CancellationToken):
            """Cancels once the manifest records ``k`` finished parts."""

            def __init__(self, manifest, k):
                super().__init__()
                self.manifest, self.k = manifest, k

            @property
            def cancelled(self):
                if super().cancelled:
                    return True
                try:
                    payload = json.loads(self.manifest.read_text())
                except (OSError, ValueError):
                    return False
                done = sum(
                    1
                    for entry in payload.get("parts", {}).values()
                    if entry.get("status") == "done"
                )
                return done >= self.k

        token = AfterParts(run_dir / "manifest.json", 3)
        with pytest.raises(EvaluationCancelled) as err:
            evaluate_parallel(
                TRIANGLE,
                db,
                bound,
                workers=2,
                policy=FAST,
                run_dir=run_dir,
                cancel_token=token,
            )
        snapshot = err.value.snapshot
        assert snapshot.reason == "cancelled"
        assert snapshot.parts_done >= 3
        assert snapshot.run_dir == str(run_dir)
        resumed = evaluate_parallel(
            TRIANGLE,
            db,
            bound,
            workers=2,
            policy=FAST,
            run_dir=run_dir,
            resume=True,
        )
        assert resumed.n_resumed >= 3
        assert sorted(resumed.output) == sorted(serial.output)
        assert resumed.nodes_visited == serial.nodes_visited
        assert resumed.parts_evaluated == serial.parts_evaluated

    def test_worker_memory_fault_aborts_run(self, routed):
        """A hard-cap verdict from a worker is deterministic: the
        supervisor re-raises instead of retrying or degrading serially
        (which would evade the budget)."""
        db, bound, _ = routed
        injector = FaultInjector({(0, 0): "memory"})  # bias 1<<40 ≥ hard
        budget = EvaluationBudget(
            soft_memory_bytes=MB, hard_memory_bytes=4 * MB
        )
        with pytest.raises(MemoryBudgetExceeded) as err:
            evaluate_parallel(
                TRIANGLE,
                db,
                bound,
                workers=2,
                policy=FAST,
                budget=budget,
                injector=injector,
            )
        assert err.value.snapshot.part_index == 0

    def test_worker_memory_fault_soft_pressure_degrades(self, routed):
        db, bound, serial = routed
        injector = FaultInjector(
            {(0, 0): "memory"}, memory_bias_bytes=2 * MB
        )
        budget = EvaluationBudget(
            soft_memory_bytes=MB, hard_memory_bytes=1 << 40
        )
        run = evaluate_parallel(
            TRIANGLE,
            db,
            bound,
            workers=2,
            policy=FAST,
            budget=budget,
            injector=injector,
        )
        assert sorted(run.output) == sorted(serial.output)
        assert run.nodes_visited == serial.nodes_visited
        faulted = next(o for o in run.outcomes if o.index == 0)
        assert faulted.ladder, "soft pressure should have walked the ladder"
        assert faulted.attempts == 1  # degraded, not failed

    def test_worker_clock_fault_trips_deadline(self, routed):
        db, bound, _ = routed
        injector = FaultInjector(
            {(0, 0): "clock"}, clock_skew_seconds=3600.0
        )
        budget = EvaluationBudget(deadline_seconds=120.0)
        with pytest.raises(EvaluationDeadlineExceeded):
            evaluate_parallel(
                TRIANGLE,
                db,
                bound,
                workers=2,
                policy=FAST,
                budget=budget,
                injector=injector,
            )

    def test_governor_fault_without_budget_is_injected_fault(self, routed):
        """No budget shipped: the plan stays observable as a normal
        retried fault instead of silently doing nothing."""
        db, bound, serial = routed
        injector = FaultInjector({(0, 0): "memory"})
        run = evaluate_parallel(
            TRIANGLE,
            db,
            bound,
            workers=2,
            policy=FAST,
            injector=injector,
        )
        assert sorted(run.output) == sorted(serial.output)
        faulted = next(o for o in run.outcomes if o.index == 0)
        assert faulted.attempts == 2
        assert run.n_retried >= 1


# ---------------------------------------------------------------------------
# Fault-plan surface for the governor kinds


class TestGovernorFaultKinds:
    def test_command_bias(self):
        memory = FaultCommand("memory", 0, 0, memory_bias_bytes=7)
        assert memory.governor_bias() == (7, 0.0)
        clock = FaultCommand("clock", 0, 0, clock_skew_seconds=2.5)
        assert clock.governor_bias() == (0, 2.5)
        assert FaultCommand("raise", 0, 0).governor_bias() == (0, 0.0)

    def test_require_governor(self):
        for kind in GOVERNOR_KINDS:
            with pytest.raises(InjectedFault, match="no budget"):
                FaultCommand(kind, 3, 0).require_governor()
        FaultCommand("raise", 3, 0).require_governor()  # no-op

    def test_parse_spec_bias_and_skew(self):
        injector = parse_fault_spec("part=2:memory,bias=2M,skew=7.5")
        command = injector.command_for(2, 0)
        assert command.kind == "memory"
        assert command.memory_bias_bytes == 2 * MB
        assert command.clock_skew_seconds == 7.5

    def test_seeded_governor_kinds_deterministic(self):
        spec = "seed=11,rate=1.0,kinds=memory+clock,bias=1M,skew=9"
        first = parse_fault_spec(spec).resolve(8)
        second = parse_fault_spec(spec).resolve(8)
        assert first.plan == second.plan
        assert len(first.plan) == 8
        assert set(first.plan.values()) <= set(GOVERNOR_KINDS)
        assert first.memory_bias_bytes == MB
        assert first.clock_skew_seconds == 9.0


# ---------------------------------------------------------------------------
# CLI surface


class TestCliGovernanceFlags:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_bad_memory_spec_fails_fast(self, capsys):
        code = self.run_cli(
            "experiment", "E14", "--memory-budget", "notasize"
        )
        assert code == 2
        assert "memory" in capsys.readouterr().err

    def test_bad_deadline_fails_fast(self, capsys):
        code = self.run_cli("experiment", "E14", "--deadline", "-3")
        assert code == 2

    def test_experiment_without_governance_rejects_flags(self, capsys):
        code = self.run_cli("experiment", "E7", "--memory-budget", "1M")
        assert code == 2
        assert "does not take" in capsys.readouterr().err

    def test_deadline_exceeded_exit_code(self, capsys):
        code = self.run_cli("experiment", "E14", "--deadline", "1e-9")
        assert code == 124
        err = capsys.readouterr().err
        assert "deadline exceeded" in err
