"""Block-size invariance of the streamed WCOJ frontier.

The blocked engine is the breadth-first engine sliced: candidates are
enumerated in one fixed parent-major order and survival of a candidate
depends only on its own binding, so output rows, their *order*, and the
``nodes_visited`` meter must be bit-identical for every
``frontier_block`` — including ``None`` (one slice per level) and 1 (one
candidate live at a time).  This suite pins that invariant across
cyclic, acyclic, self-join, repeated-variable, and empty queries, checks
the routed paths (``evaluate_with_partitioning``), and holds the blocked
engine to a hard memory cap on the star workload whose unblocked
frontier is quadratically larger than its output.
"""

import tracemalloc

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BoundSolver, StatisticsCatalog
from repro.datasets import power_law_graph, star_database, star_query
from repro.evaluation import (
    evaluate_with_partitioning,
    generic_join,
    generic_join_tuples,
)
from repro.query import parse_query
from repro.relational import Database, Relation
from repro.relational.columnar import ChunkedColumns

SETTINGS = settings(max_examples=25, deadline=None)

BLOCKS = (1, 7, 64)

values = st.integers(0, 5)
pairs = st.lists(st.tuples(values, values), max_size=18)
units = st.lists(st.tuples(values), max_size=6)

QUERIES = [
    parse_query("triangle(x,y,z) :- R(x,y), R(y,z), R(z,x)"),
    parse_query("lw(x,y,z) :- R(x,y), S(y,z), T(x,z)"),
    parse_query("cycle4(a,b,c,d) :- R(a,b), S(b,c), R(c,d), S(d,a)"),
    parse_query("onejoin(x,y,z) :- R(x,y), S(y,z)"),
    parse_query("star(m,a,b) :- U(m), R(m,a), R(m,b)"),
    parse_query("diag(x,w) :- R(x,x), S(x,w)"),
    parse_query("disjoint(x,y,u,v) :- R(x,y), S(u,v)"),
]


@st.composite
def databases(draw):
    return Database(
        {
            "R": Relation(("a", "b"), draw(pairs)),
            "S": Relation(("a", "b"), draw(pairs)),
            "T": Relation(("a", "b"), draw(pairs)),
            "U": Relation(("u",), draw(units)),
        }
    )


def assert_block_invariant(query, db, blocks=BLOCKS):
    reference = generic_join(query, db)
    oracle = generic_join_tuples(query, db)
    assert set(reference.output) == set(oracle.output)
    assert reference.nodes_visited == oracle.nodes_visited
    for block in blocks:
        run = generic_join(query, db, frontier_block=block)
        assert run.output.attributes == reference.output.attributes
        assert list(run.output) == list(reference.output), (query.name, block)
        assert run.nodes_visited == reference.nodes_visited, (
            query.name,
            block,
        )


class TestBlockInvariance:
    @SETTINGS
    @given(databases())
    def test_all_query_shapes(self, db):
        for query in QUERIES:
            assert_block_invariant(query, db)

    @SETTINGS
    @given(pairs)
    def test_explicit_orders(self, rows):
        db = Database({"R": Relation(("a", "b"), rows)})
        query = parse_query("t(x,y,z) :- R(x,y), R(y,z), R(z,x)")
        for order in [("x", "y", "z"), ("z", "x", "y")]:
            reference = generic_join(query, db, order=order)
            for block in BLOCKS:
                run = generic_join(
                    query, db, order=order, frontier_block=block
                )
                assert list(run.output) == list(reference.output)
                assert run.nodes_visited == reference.nodes_visited

    def test_empty_relation(self):
        db = Database(
            {
                "R": Relation(("a", "b"), []),
                "S": Relation(("a", "b"), [(1, 2)]),
            }
        )
        query = parse_query("q(x,y,z) :- R(x,y), S(y,z)")
        for block in (None, 1, 64):
            run = generic_join(query, db, frontier_block=block)
            assert run.count == 0 and run.nodes_visited == 0

    def test_dead_branch_meters_match(self):
        # R has rows but S kills every branch at the second level
        db = Database(
            {
                "R": Relation(("a", "b"), [(1, 2), (3, 4)]),
                "S": Relation(("a", "b"), [(9, 9)]),
            }
        )
        query = parse_query("q(x,y,z) :- R(x,y), S(y,z)")
        order = ("x", "y", "z")
        reference = generic_join(query, db, order=order)
        assert reference.count == 0 and reference.nodes_visited > 0
        for block in BLOCKS:
            run = generic_join(query, db, order=order, frontier_block=block)
            assert run.count == 0
            assert run.nodes_visited == reference.nodes_visited

    def test_generated_graph_triangle(self):
        db = Database({"R": power_law_graph(300, 1200, 0.5, seed=5)})
        query = parse_query("t(x,y,z) :- R(x,y), R(y,z), R(z,x)")
        assert_block_invariant(query, db, blocks=(1, 7, 64, 4096))

    def test_rejects_non_positive_block(self):
        db = Database({"R": Relation(("a", "b"), [(1, 2)])})
        query = parse_query("q(x,y) :- R(x,y)")
        for bad in (0, -3):
            with pytest.raises(ValueError):
                generic_join(query, db, frontier_block=bad)

    def test_fallback_path_ignores_block(self):
        # non-integer values: the tuple engine serves every block size
        db = Database(
            {
                "R": Relation(("a", "b"), [("u", "v"), ("v", "w")]),
                "S": Relation(("a", "b"), [("v", "w")]),
            }
        )
        query = parse_query("q(x,y,z) :- R(x,y), S(y,z)")
        oracle = generic_join_tuples(query, db)
        for block in (None, 1, 7):
            run = generic_join(query, db, frontier_block=block)
            assert set(run.output) == set(oracle.output)
            assert run.nodes_visited == oracle.nodes_visited


class TestRoutedPaths:
    def test_partitioned_evaluation_is_block_invariant(self):
        db = Database({"R": power_law_graph(200, 700, 0.6, seed=9)})
        query = parse_query("t(x,y,z) :- R(x,y), R(y,z), R(z,x)")
        (stats,) = StatisticsCatalog(db).precompute(
            [query], ps=[1.0, 2.0, float("inf")]
        )
        bound = BoundSolver().solve(stats, query=query)
        reference = evaluate_with_partitioning(
            query, db, bound, max_parts=20000
        )
        for block in (1, 64):
            run = evaluate_with_partitioning(
                query, db, bound, max_parts=20000, frontier_block=block
            )
            assert set(run.output) == set(reference.output)
            assert run.nodes_visited == reference.nodes_visited
            assert run.parts_evaluated == reference.parts_evaluated


class TestStarMemoryCap:
    """The acceptance case: quadratic frontier, linear output."""

    FAN_OUT = 256
    BLOCK = 1024

    def _peak(self, fn, *args, **kwargs):
        tracemalloc.start()
        try:
            result = fn(*args, **kwargs)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return result, peak

    def test_blocked_run_stays_under_hard_cap(self):
        query = star_query(2)
        db = star_database(self.FAN_OUT)
        generic_join(query, db)  # warm trie caches outside the measurement
        unblocked, peak_unblocked = self._peak(generic_join, query, db)
        blocked, peak_blocked = self._peak(
            generic_join, query, db, frontier_block=self.BLOCK
        )
        # identical search, sliced
        assert list(blocked.output) == list(unblocked.output)
        assert blocked.nodes_visited == unblocked.nodes_visited
        assert blocked.count == self.FAN_OUT
        # hard cap: O(block × depth) live columns, far under the
        # fan_out²-sized frontier (~20 MB unblocked at this size)
        assert peak_blocked < 2 * 1024 * 1024, (
            f"blocked peak {peak_blocked / 1e6:.2f} MB exceeds the 2 MB cap"
        )
        assert peak_unblocked >= 8 * peak_blocked

    def test_count_sink_caps_memory_at_fan_out_1024(self):
        """The output-sink acceptance case at the scale PR 4 could not
        touch cheaply: closed star fan-out 1024, whose unblocked
        materialized evaluation allocates beyond 200 MB, counted under
        ``CountSink`` + ``frontier_block=64`` within a 2 MB hard cap —
        the same search (bit-identical meter and count), re-routed.
        """
        from repro.relational import CountSink

        fan_out, block = 1024, 64
        query = star_query(2)
        db = star_database(fan_out)
        # warm the trie caches cheaply (blocked, so ~1 MB peak)
        generic_join(query, db, frontier_block=8192)
        unblocked, peak_materialized = self._peak(generic_join, query, db)
        sink = CountSink()
        counted, peak_counted = self._peak(
            generic_join, query, db, frontier_block=block, sink=sink
        )
        assert sink.total == unblocked.count == fan_out
        assert counted.nodes_visited == unblocked.nodes_visited
        assert peak_materialized > 200 * 1000 * 1000, (
            f"expected a >200 MB materialized run, saw "
            f"{peak_materialized / 1e6:.1f} MB"
        )
        assert peak_counted < 2 * 1024 * 1024, (
            f"count-sink peak {peak_counted / 1e6:.2f} MB exceeds the "
            f"2 MB cap"
        )


class TestChunkedColumns:
    def test_accumulates_and_finalizes_once(self):
        import numpy as np

        acc = ChunkedColumns(2)
        acc.append([np.array([1, 2]), np.array([3, 4])])
        acc.append([np.array([5]), np.array([6])])
        assert acc.n_rows == 3 and acc.n_chunks == 2
        a, b = acc.finalize()
        assert a.tolist() == [1, 2, 5] and b.tolist() == [3, 4, 6]

    def test_empty_finalize(self):
        acc = ChunkedColumns(1)
        (column,) = acc.finalize()
        assert column.size == 0 and acc.n_rows == 0

    def test_rejects_ragged_append(self):
        import numpy as np

        acc = ChunkedColumns(2)
        with pytest.raises(ValueError):
            acc.append([np.array([1])])
