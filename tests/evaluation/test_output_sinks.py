"""Sink invariance of the WCOJ output stream.

Every sink sees the same rows in the same order with the same meter as
the materialized path, for every ``frontier_block`` (including ``None``)
— a sink only decides what happens to each finished batch, never which
batches exist.  This suite pins that invariant across cyclic, acyclic,
self-join, repeated-variable, empty, and non-integer-fallback queries;
checks the routed Theorem 2.6 path (counts add across disjoint part
combinations, spill segments concatenate); exercises the chunk store's
robustness guarantees (atomicity, validation, cleanup, collision-free
concurrent runs); and holds :class:`CountSink` to exact Python-int
arithmetic beyond the ``int64`` range.
"""

import tempfile
from collections import Counter
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BoundSolver, StatisticsCatalog
from repro.datasets import power_law_graph
from repro.evaluation import (
    acyclic_count,
    evaluate_with_partitioning,
    generic_join,
)
from repro.query import parse_query
from repro.query.query import Atom, ConjunctiveQuery
from repro.relational import (
    CountSink,
    Database,
    GroupCountSink,
    MaterializeSink,
    Relation,
    SpillSink,
)
from repro.relational.chunkstore import ChunkStoreError, SegmentStore

SETTINGS = settings(max_examples=10, deadline=None)

BLOCKS = (1, 7, 64, None)

values = st.integers(0, 5)
pairs = st.lists(st.tuples(values, values), max_size=18)
units = st.lists(st.tuples(values), max_size=6)

QUERIES = [
    parse_query("triangle(x,y,z) :- R(x,y), R(y,z), R(z,x)"),
    parse_query("lw(x,y,z) :- R(x,y), S(y,z), T(x,z)"),
    parse_query("cycle4(a,b,c,d) :- R(a,b), S(b,c), R(c,d), S(d,a)"),
    parse_query("onejoin(x,y,z) :- R(x,y), S(y,z)"),
    parse_query("star(m,a,b) :- U(m), R(m,a), R(m,b)"),
    parse_query("diag(x,w) :- R(x,x), S(x,w)"),
    parse_query("disjoint(x,y,u,v) :- R(x,y), S(u,v)"),
]


@st.composite
def databases(draw):
    return Database(
        {
            "R": Relation(("a", "b"), draw(pairs)),
            "S": Relation(("a", "b"), draw(pairs)),
            "T": Relation(("a", "b"), draw(pairs)),
            "U": Relation(("u",), draw(units)),
        }
    )


def assert_sink_invariant(query, db, blocks=BLOCKS):
    group_vars = query.variables[:2]
    for block in blocks:
        reference = generic_join(query, db, frontier_block=block)
        rows = list(reference.output)

        materialize = MaterializeSink()
        run = generic_join(query, db, frontier_block=block, sink=materialize)
        assert run.output is None and run.sink is materialize
        materialized = materialize.relation(name=query.name)
        assert materialized.attributes == reference.output.attributes
        assert list(materialized) == rows, (query.name, block)
        assert run.nodes_visited == reference.nodes_visited

        count = CountSink()
        run = generic_join(query, db, frontier_block=block, sink=count)
        assert count.total == len(rows) == run.count
        assert run.nodes_visited == reference.nodes_visited

        positions = [query.variables.index(v) for v in group_vars]
        grouped = GroupCountSink(group_vars)
        run = generic_join(query, db, frontier_block=block, sink=grouped)
        expected = Counter(tuple(row[p] for p in positions) for row in rows)
        assert grouped.counts() == expected, (query.name, block)
        assert grouped.n_rows == len(rows)
        assert run.nodes_visited == reference.nodes_visited

        with tempfile.TemporaryDirectory() as tmp:
            with SpillSink(Path(tmp) / "spill", chunk_rows=8) as spill:
                run = generic_join(
                    query, db, frontier_block=block, sink=spill
                )
                assert spill.rows() == rows, (query.name, block)
                assert spill.n_rows == len(rows)
                assert run.nodes_visited == reference.nodes_visited
                if rows and db["R"].columnar() is not None:
                    for chunk in spill.iter_chunks():
                        assert all(c.dtype == np.int64 for c in chunk)


class TestSinkInvariance:
    @SETTINGS
    @given(databases())
    def test_all_query_shapes(self, db):
        for query in QUERIES:
            assert_sink_invariant(query, db)

    def test_fallback_values_round_trip(self):
        # non-integer values force the tuple engine; every sink must see
        # the same stream, and spilled object columns must round-trip
        # unstringified (1 stays int, "1" stays str)
        db = Database(
            {
                "R": Relation(("a", "b"), [("u", 1), (1, "1"), ("1", "u")]),
                "S": Relation(("a", "b"), [(1, "1"), ("u", 1), ("1", "u")]),
            }
        )
        query = parse_query("q(x,y,z) :- R(x,y), S(y,z)")
        for query_ in (query, parse_query("t(x,y,z) :- R(x,y), R(y,z), R(z,x)")):
            assert_sink_invariant(query_, db, blocks=(None, 1, 7))

    def test_generated_graph_triangle(self):
        db = Database({"R": power_law_graph(300, 1200, 0.5, seed=5)})
        query = parse_query("t(x,y,z) :- R(x,y), R(y,z), R(z,x)")
        assert_sink_invariant(query, db, blocks=(7, 64, None))

    def test_group_count_sink_full_projection_and_validation(self):
        db = Database({"R": Relation(("a", "b"), [(1, 2), (2, 3), (1, 3)])})
        query = parse_query("q(x,y) :- R(x,y)")
        grouped = GroupCountSink(("y",))
        generic_join(query, db, sink=grouped)
        assert grouped.counts() == Counter({(2,): 1, (3,): 2})
        with pytest.raises(ValueError, match="not in output"):
            generic_join(query, db, sink=GroupCountSink(("z",)))

    def test_sink_reopen_must_match_schema(self):
        sink = CountSink()
        db = Database({"R": Relation(("a", "b"), [(1, 2)])})
        generic_join(parse_query("q(x,y) :- R(x,y)"), db, sink=sink)
        with pytest.raises(ValueError, match="already open"):
            generic_join(parse_query("q(x,z) :- R(x,z)"), db, sink=sink)

    def test_unopened_sink_rejects_appends(self):
        sink = CountSink()
        with pytest.raises(RuntimeError, match="not been opened"):
            sink.append([np.array([1])])
        with pytest.raises(RuntimeError, match="not been opened"):
            sink.append_rows([(1,)])

    def test_ragged_batch_is_rejected(self):
        for sink in (MaterializeSink(), GroupCountSink(("y",))):
            sink.open(("x", "y"))
            with pytest.raises(ValueError, match="ragged batch"):
                sink.append([np.arange(5), np.arange(3)])
            assert sink.n_rows == 0

    def test_append_size_only_for_size_sinks(self):
        count = CountSink()
        count.open(("x",))
        count.append_size(7)
        assert count.total == 7
        with pytest.raises(ValueError):
            count.append_size(-1)
        grouped = GroupCountSink(("x",))
        grouped.open(("x",))
        with pytest.raises(TypeError, match="consumes row values"):
            grouped.append_size(3)


class TestRoutedPartitioning:
    """Theorem 2.6: one shared sink absorbs every part combination."""

    @pytest.fixture(scope="class")
    def routed(self):
        db = Database({"R": power_law_graph(200, 700, 0.6, seed=9)})
        query = parse_query("t(x,y,z) :- R(x,y), R(y,z), R(z,x)")
        (stats,) = StatisticsCatalog(db).precompute(
            [query], ps=[1.0, 2.0, float("inf")]
        )
        bound = BoundSolver().solve(stats, query=query)
        reference = evaluate_with_partitioning(
            query, db, bound, max_parts=20000
        )
        return query, db, bound, reference

    def test_counts_add_across_parts(self, routed):
        query, db, bound, reference = routed
        assert reference.parts_evaluated > 1  # the union is real
        sink = CountSink()
        run = evaluate_with_partitioning(
            query, db, bound, max_parts=20000, sink=sink
        )
        assert run.output is None
        assert sink.total == reference.count == run.count
        assert run.nodes_visited == reference.nodes_visited
        assert run.parts_evaluated == reference.parts_evaluated

    def test_spill_matches_union_rows_and_order(self, routed):
        query, db, bound, reference = routed
        with tempfile.TemporaryDirectory() as tmp:
            with SpillSink(Path(tmp) / "parts", chunk_rows=256) as sink:
                run = evaluate_with_partitioning(
                    query,
                    db,
                    bound,
                    max_parts=20000,
                    frontier_block=64,
                    sink=sink,
                )
                assert sink.rows() == list(reference.output)
                assert run.nodes_visited == reference.nodes_visited

    def test_group_counts_match_union(self, routed):
        query, db, bound, reference = routed
        sink = GroupCountSink(("x",))
        evaluate_with_partitioning(
            query, db, bound, max_parts=20000, sink=sink
        )
        assert sink.counts() == Counter(
            (row[0],) for row in reference.output
        )


class TestCountSinkExactArithmetic:
    """The big-int promotion regression: totals past 2^63 stay exact."""

    def test_int64_batch_sizes_never_wrap(self):
        sink = CountSink()
        sink.open(("x",))
        for _ in range(4):
            sink.add(np.int64(1) << 62)
        # a naive int64 accumulator would have wrapped negative twice
        assert sink.total == 1 << 64
        assert isinstance(sink.total, int)

    def test_weighted_star_count_beyond_int64(self):
        # an open star with 5 arms over a fan-out-8192 hub: the per-hub
        # output count is 8192^5 = 2^65 — computable exactly by the
        # acyclic counting sweep, far beyond anything materializable.
        # CountSink folds those per-hub counts without losing a bit,
        # mirroring acyclic_count's object-dtype promotion.
        fan_out, arms, hubs = 1 << 13, 5, 3
        query = ConjunctiveQuery(
            [Atom(f"R{i}", ("h", f"x{i}")) for i in range(1, arms + 1)],
            name="open_star",
        )
        leaves = np.arange(fan_out, dtype=np.int64)
        fan = Relation.from_columns(
            ("h", "v"), [np.zeros(fan_out, dtype=np.int64), leaves]
        )
        db = Database({f"R{i}": fan for i in range(1, arms + 1)})
        per_hub = acyclic_count(query, db)
        assert per_hub == fan_out**arms == 1 << 65
        sink = CountSink()
        sink.open(query.variables)
        for _ in range(hubs):
            sink.add(per_hub)
        assert sink.total == hubs * fan_out**arms
        assert isinstance(sink.total, int)

    def test_add_rejects_negative_and_fractional(self):
        sink = CountSink()
        with pytest.raises(ValueError):
            sink.add(-1)
        with pytest.raises(TypeError):
            sink.add(2.5)


class TestSpillRobustness:
    def _spill_rows(self, directory, rows):
        sink = SpillSink(directory, chunk_rows=2)
        sink.open(("x", "y"))
        sink.append_rows(rows)
        sink.flush()
        return sink

    def test_corrupt_segment_raises_not_garbage(self, tmp_path):
        sink = self._spill_rows(tmp_path / "s", [(1, 2), (3, 4), (5, 6)])
        victim = sink.store.segments()[0]
        victim.write_bytes(b"this is not an npz archive")
        with pytest.raises(ChunkStoreError, match="corrupt or truncated"):
            sink.rows()

    def test_truncated_segment_raises(self, tmp_path):
        sink = self._spill_rows(tmp_path / "s", [(1, 2), (3, 4), (5, 6)])
        victim = sink.store.segments()[0]
        victim.write_bytes(victim.read_bytes()[:20])
        with pytest.raises(ChunkStoreError, match="corrupt or truncated"):
            sink.rows()

    def test_wrong_shape_segment_raises(self, tmp_path):
        store = SegmentStore(tmp_path / "s", 2)
        path = store.write([np.array([1, 2]), np.array([3, 4])])
        np.savez(path, n_rows=np.int64(2), column_0=np.array([1, 2]),
                 column_1=np.array([3]))
        with pytest.raises(ChunkStoreError, match="shape"):
            list(store.iter_chunks())

    def test_no_tmp_files_survive_a_write(self, tmp_path):
        store = SegmentStore(tmp_path / "s", 1)
        store.write([np.arange(10)])
        store.write([np.arange(3)])
        leftovers = list((tmp_path / "s").glob("*.tmp"))
        assert leftovers == []
        assert [len(c[0]) for c in store.iter_chunks()] == [10, 3]

    def test_directory_cleanup_on_success(self, tmp_path):
        target = tmp_path / "spill"
        with SpillSink(target) as sink:
            sink.open(("x",))
            sink.append([np.array([1, 2, 3], dtype=np.int64)])
            assert sink.rows() == [(1,), (2,), (3,)]
            assert target.exists()
        assert not target.exists()

    def test_directory_cleanup_on_exception(self, tmp_path):
        target = tmp_path / "spill"
        with pytest.raises(RuntimeError, match="boom"):
            with SpillSink(target) as sink:
                sink.open(("x",))
                sink.append([np.array([1, 2], dtype=np.int64)])
                sink.flush()
                assert target.exists()
                raise RuntimeError("boom")
        assert not target.exists()

    def test_close_leaves_foreign_files_alone(self, tmp_path):
        target = tmp_path / "spill"
        target.mkdir()
        foreign = target / "keep.txt"
        foreign.write_text("mine")
        with SpillSink(target) as sink:
            sink.open(("x",))
            sink.append([np.array([1], dtype=np.int64)])
            sink.flush()
        assert foreign.exists()  # only the sink's segments were removed
        assert list(target.glob("segment-*.npz")) == []

    def test_concurrent_runs_in_distinct_dirs_do_not_collide(self, tmp_path):
        db = Database({"R": power_law_graph(80, 300, 0.4, seed=3)})
        query = parse_query("t(x,y,z) :- R(x,y), R(y,z), R(z,x)")
        reference = list(generic_join(query, db).output)
        first = SpillSink(tmp_path / "run-a", chunk_rows=16)
        second = SpillSink(tmp_path / "run-b", chunk_rows=16)
        try:
            # both stores live at once, writing identical segment names
            run_a = generic_join(query, db, frontier_block=32, sink=first)
            run_b = generic_join(query, db, frontier_block=7, sink=second)
            assert first.rows() == reference == second.rows()
            assert run_a.nodes_visited == run_b.nodes_visited
            names_a = {p.name for p in first.store.segments()}
            names_b = {p.name for p in second.store.segments()}
            assert names_a and names_b  # same names, different directories
        finally:
            first.close()
            second.close()
        assert not (tmp_path / "run-a").exists()
        assert not (tmp_path / "run-b").exists()

    def test_zero_variable_output_is_rejected(self, tmp_path):
        sink = SpillSink(tmp_path / "s")
        with pytest.raises(ValueError, match="nothing to spill"):
            sink.open(())

    def test_reading_a_closed_sink_raises(self, tmp_path):
        # after close() the segments are gone; answering [] while
        # n_rows still reports the written total would be a silent
        # wrong answer
        with SpillSink(tmp_path / "s") as sink:
            sink.open(("x",))
            sink.append([np.array([1, 2], dtype=np.int64)])
        assert sink.n_rows == 2
        with pytest.raises(RuntimeError, match="closed"):
            sink.rows()
        with pytest.raises(RuntimeError, match="closed"):
            list(sink.iter_chunks())
