"""Unit tests for the command-line interface."""

import math

import pytest

from repro.cli import EXPERIMENTS, _parse_norms, build_parser, main


class TestParsing:
    def test_norms_parser(self):
        assert _parse_norms("1,2,inf") == [1.0, 2.0, math.inf]
        assert _parse_norms("2.5") == [2.5]

    def test_norms_parser_rejects_empty(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_norms(",")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E14" in out
        assert len(EXPERIMENTS) == 14

    def test_experiment_by_id(self, capsys):
        assert main(["experiment", "E7"]) == 0
        out = capsys.readouterr().out
        assert "35" in out  # the 35/36 gap experiment

    def test_experiment_by_module_name(self, capsys):
        assert main(["experiment", "nonshannon"]) == 0
        assert "non-Shannon" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "E99"]) == 2

    def test_frontier_block_rejected_where_unsupported(self, capsys):
        assert main(["experiment", "E7", "--frontier-block", "64"]) == 2
        assert "--frontier-block" in capsys.readouterr().err

    def test_frontier_block_rejects_non_positive(self, capsys):
        assert main(["experiment", "E14", "--frontier-block", "0"]) == 2
        assert "must be ≥ 1" in capsys.readouterr().err

    def test_star_experiment_takes_frontier_block(self, capsys):
        assert main(["experiment", "E14", "--frontier-block", "4096"]) == 0
        out = capsys.readouterr().out
        assert "E14" in out and "block=4096" in out
        assert "NO" not in out  # every blocked run bit-identical

    def test_sink_rejected_where_unsupported(self, capsys):
        assert main(["experiment", "E7", "--sink", "count"]) == 2
        assert "--sink" in capsys.readouterr().err

    def test_spill_dir_requires_spill_sink(self, capsys):
        code = main(
            ["experiment", "E14", "--sink", "count", "--spill-dir", "x"]
        )
        assert code == 2
        assert "--spill-dir requires --sink spill" in capsys.readouterr().err

    def test_star_experiment_count_sink(self, capsys):
        assert main(["experiment", "E14", "--sink", "count"]) == 0
        out = capsys.readouterr().out
        assert "count" in out and "spill" not in out
        assert "NO" not in out

    def test_star_experiment_spill_sink(self, tmp_path, capsys):
        code = main(
            [
                "experiment",
                "E14",
                "--sink",
                "spill",
                "--spill-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "spill" in out and "NO" not in out
        # the driver closes its sinks: every per-fan-out spill
        # subdirectory (and its segments) is gone again
        assert list(tmp_path.iterdir()) == []

    def test_parallel_workers_rejected_where_unsupported(self, capsys):
        assert main(["experiment", "E7", "--parallel-workers", "2"]) == 2
        assert "--parallel-workers" in capsys.readouterr().err

    def test_parallel_workers_rejects_non_positive(self, capsys):
        assert main(["experiment", "E8", "--parallel-workers", "0"]) == 2
        assert "must be ≥ 1" in capsys.readouterr().err

    def test_supervision_flags_require_parallel_workers(self, capsys):
        assert main(["experiment", "E8", "--retries", "3"]) == 2
        assert "--parallel-workers" in capsys.readouterr().err
        assert main(["experiment", "E8", "--part-timeout", "5"]) == 2
        assert "--parallel-workers" in capsys.readouterr().err

    def test_inject_faults_rejects_bad_spec(self, capsys):
        assert (
            main(
                [
                    "experiment",
                    "E8",
                    "--parallel-workers",
                    "2",
                    "--inject-faults",
                    "part=3:meltdown",
                ]
            )
            == 2
        )
        assert "--inject-faults" in capsys.readouterr().err

    def test_kernels_flag_rejects_unknown_mode(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "E14", "--kernels", "turbo"])

    def test_kernels_python_mode_runs(self, capsys):
        from repro.relational import kernels

        prior = kernels.active_mode()
        try:
            assert main(["experiment", "E14", "--kernels", "python"]) == 0
            assert kernels.active_mode() == "python"
            assert "E14" in capsys.readouterr().out
        finally:
            kernels.set_mode(prior)

    def test_kernels_numba_without_numba_is_a_clean_error(self, capsys):
        from repro.relational import kernels

        if kernels.numba_available():
            pytest.skip("numba is installed")
        assert main(["experiment", "E14", "--kernels", "numba"]) == 2
        assert "--kernels" in capsys.readouterr().err

    def test_star_experiment_parallel_workers(self, capsys):
        assert (
            main(
                [
                    "experiment",
                    "E14",
                    "--parallel-workers",
                    "2",
                    "--retries",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "parallel[2]" in out
        assert "NO" not in out  # every parallel run verified vs serial

    def test_bound_over_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "edges.csv"
        csv_path.write_text("x,y\n1,2\n2,3\n3,1\n2,1\n3,2\n1,3\n")
        code = main(
            [
                "bound",
                "--query",
                "Q(x,y,z) :- R(x,y), R(y,z), R(z,x)",
                "--table",
                f"R={csv_path}",
                "--norms",
                "1,2,inf",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bound" in out
        assert "certificate" in out

    def test_bound_bad_table_spec(self, capsys):
        code = main(
            ["bound", "--query", "Q(x) :- R(x)", "--table", "nonsense"]
        )
        assert code == 2

    def test_bound_string_values(self, tmp_path, capsys):
        csv_path = tmp_path / "r.csv"
        csv_path.write_text("x,y\na,b\nb,c\n")
        code = main(
            [
                "bound",
                "--query",
                "Q(x,y,z) :- R(x,y), R(y,z)",
                "--table",
                f"R={csv_path}",
            ]
        )
        assert code == 0
        assert "optimal" in capsys.readouterr().out
