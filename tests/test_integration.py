"""End-to-end integration tests across the whole stack.

Each test walks a realistic pipeline: generate data → parse a query →
collect statistics → bound → evaluate → compare, crossing every package
boundary the library has.
"""

import math

import pytest

from repro import (
    Database,
    Relation,
    collect_statistics,
    lp_bound,
    parse_query,
)
from repro.core import product_form, verify_certificate
from repro.datasets import alpha_beta_relation, power_law_graph
from repro.estimators import (
    agm_bound,
    dsb_single_join,
    panda_bound,
    textbook_estimate,
)
from repro.evaluation import (
    acyclic_count,
    count_query,
    evaluate_with_partitioning,
)
from repro.tightness import build_worst_case


class TestFullPipelineTriangle:
    @pytest.fixture(scope="class")
    def setup(self):
        edges = power_law_graph(250, 1000, 0.6, seed=99)
        db = Database({"R": edges})
        q = parse_query("tri(x,y,z) :- R(x,y), R(y,z), R(z,x)")
        stats = collect_statistics(q, db, ps=[1.0, 2.0, 3.0, math.inf])
        return db, q, stats

    def test_bound_chain_is_ordered(self, setup):
        db, q, stats = setup
        truth = count_query(q, db)
        ours = lp_bound(stats, query=q)
        panda = panda_bound(q, db, statistics=stats)
        agm = agm_bound(q, db)
        assert math.log2(max(1, truth)) <= ours.log2_bound + 1e-9
        assert ours.log2_bound <= panda.log2_bound + 1e-9
        assert panda.log2_bound <= agm + 1e-9

    def test_certificate_round_trip(self, setup):
        _, q, stats = setup
        result = lp_bound(stats, query=q)
        assert verify_certificate(result)
        assert "||deg_R(" in product_form(result)
        # the primal witness is a feasible polymatroid achieving the bound
        h = result.entropy_vector()
        assert h.full == pytest.approx(result.log2_bound)

    def test_partitioned_evaluation_consistent(self, setup):
        db, q, stats = setup
        result = lp_bound(stats.restrict_ps([1.0, 2.0, math.inf]), query=q)
        run = evaluate_with_partitioning(q, db, result, max_parts=10000)
        assert run.count == count_query(q, db)
        assert run.within_budget()


class TestFullPipelineAcyclic:
    @pytest.fixture(scope="class")
    def setup(self):
        r = alpha_beta_relation(1 / 3, 1 / 3, 1000).with_name("R")
        s = alpha_beta_relation(1 / 3, 1 / 3, 1000).with_name("S")
        db = Database({"R": r, "S": s})
        q = parse_query("j(x,y,z) :- R(x,y), S(y,z)")
        return db, q

    def test_bounds_and_estimators_bracket_truth(self, setup):
        db, q = setup
        truth = acyclic_count(q, db)
        stats = collect_statistics(q, db, ps=[1.0, 2.0, math.inf])
        ours = lp_bound(stats, query=q)
        dsb = dsb_single_join(q, db)
        assert truth <= dsb <= 2 ** ours.log2_bound * (1 + 1e-9)
        estimate = textbook_estimate(q, db)
        assert estimate > 0

    def test_l2_beats_panda_on_alpha_beta(self, setup):
        # the Sec. C.3 separation: (1/3,1/3)-instances favour ℓ2
        db, q = setup
        stats = collect_statistics(q, db, ps=[1.0, 2.0, math.inf])
        l2 = lp_bound(stats.restrict_ps([2.0]), query=q)
        panda = lp_bound(stats.restrict_ps([1.0, math.inf]), query=q)
        assert l2.log2_bound < panda.log2_bound - 1.0  # >2× better

    def test_worst_case_construction_from_scaled_stats(self, setup):
        db, q = setup
        stats = collect_statistics(q, db, ps=[1.0, 2.0, math.inf])
        bound = lp_bound(stats, query=q, cone="normal")
        if bound.log2_bound > 20:
            pytest.skip("instance too large to materialise")
        worst = build_worst_case(q, bound)
        assert worst.is_tight()
        assert stats.holds_on(worst.database, tolerance_log2=1e-6)


class TestSelfJoinEquality:
    def test_eq18_exact_for_symmetric_self_join(self):
        """Sec. 2.1: for Q = R(x,y) ∧ R(z,y), bound (18) equals |Q|."""
        edges = power_law_graph(200, 800, 0.7, seed=5)
        db = Database({"R": edges})
        q = parse_query("Q(x,y,z) :- R(x,y), R(z,y)")
        stats = collect_statistics(q, db, ps=[2.0])
        result = lp_bound(stats.restrict_ps([2.0]), query=q)
        truth = count_query(q, db)
        assert result.log2_bound == pytest.approx(math.log2(truth), abs=1e-6)


class TestLargeVariableCounts:
    def test_star_with_twelve_variables_uses_normal_cone(self):
        center = Relation(
            ("m", "v"), [(i % 5, i) for i in range(40)], name="R"
        )
        db = Database({"R": center})
        atoms = ", ".join(f"R(m, a{i})" for i in range(11))
        q = parse_query(f"Q(m) :- {atoms}")
        stats = collect_statistics(q, db, ps=[1.0, 2.0, math.inf])
        result = lp_bound(stats, query=q)
        assert result.cone == "normal"
        assert result.status == "optimal"
        # the output has ~5·8^11 tuples: count via the join-tree DP, never
        # materialise
        truth = acyclic_count(q, db)
        assert truth == 5 * 8**11
        assert result.log2_bound >= math.log2(truth) - 1e-6
