"""Shared fixtures: small deterministic relations, graphs, and queries."""

import random

import pytest

from repro.query import parse_query
from repro.relational import Database, Relation


@pytest.fixture
def tiny_relation():
    """R(x, y) with 4 rows, one skewed y-value."""
    return Relation(("x", "y"), [(1, 10), (2, 10), (3, 10), (4, 20)], name="R")


@pytest.fixture
def small_graph():
    """A deterministic 60-node random graph, symmetric, ~400 edges."""
    rng = random.Random(1234)
    edges = set()
    while len(edges) < 200:
        a, b = rng.randrange(60), rng.randrange(60)
        if a != b:
            edges.add((min(a, b), max(a, b)))
    rows = [(a, b) for a, b in edges] + [(b, a) for a, b in edges]
    return Relation(("x", "y"), rows, name="R")


@pytest.fixture
def graph_db(small_graph):
    return Database({"R": small_graph})


@pytest.fixture
def triangle_query():
    return parse_query("triangle(x,y,z) :- R(x,y), R(y,z), R(z,x)")


@pytest.fixture
def one_join_query():
    return parse_query("onejoin(x,y,z) :- R(x,y), S(y,z)")


@pytest.fixture
def two_table_db():
    """R(x,y), S(y,z): a small skewed join instance."""
    r = Relation(
        ("x", "y"),
        [(i, i % 4) for i in range(12)] + [(100 + i, 0) for i in range(6)],
        name="R",
    )
    s = Relation(
        ("y", "z"),
        [(j % 4, j) for j in range(10)] + [(0, 200 + j) for j in range(5)],
        name="S",
    )
    return Database({"R": r, "S": s})
