"""Shape tests for E11–E13 at reduced scale."""

import math

import pytest

from repro.experiments.appendix_b import run_example_b1, run_theorem_b2
from repro.experiments.chain import chain_query_over, run_chain_experiment
from repro.experiments.loomis_whitney import (
    loomis_whitney_query,
    run_loomis_whitney_experiment,
    skewed_ternary_instance,
)


class TestChain:
    def test_query_shape(self):
        q = chain_query_over(3)
        assert q.num_variables == 4
        assert [a.relation for a in q.atoms] == ["R1", "R2", "R3"]

    def test_short_run(self):
        rows = run_chain_experiment("ca-GrQc", lengths=(2, 3), max_p=4)
        assert [r.length for r in rows] == [2, 3]
        for r in rows:
            assert r.ratio_full >= 1.0 - 1e-9
            assert r.ratio_full <= r.ratio_l1_inf + 1e-9
            assert r.ratio_l1_inf <= r.ratio_l1 + 1e-9
            assert r.ratio_estimator < 1.0
            # closed form (20) is never better than the LP optimum
            assert r.ratio_full <= r.ratio_formula_p2 * (1 + 1e-9)

    def test_dsb_close_to_lp_on_short_chains(self):
        (row,) = run_chain_experiment("ca-GrQc", lengths=(2,), max_p=4)
        # for the single join, DSB ≤ ℓ2-bound = LP optimum here
        assert row.ratio_dsb <= row.ratio_full * (1 + 1e-6)


class TestLoomisWhitney:
    def test_query_is_cyclic_hypergraph(self):
        from repro.query import is_alpha_acyclic

        assert not is_alpha_acyclic(loomis_whitney_query())

    def test_instance_schema(self):
        db = skewed_ternary_instance(rows=300, domain=12, seed=2)
        for name in ("A", "B", "C", "D"):
            assert db[name].arity == 3

    def test_small_run_sound_and_ordered(self):
        res = run_loomis_whitney_experiment(rows=400, domain=12, seed=2)
        assert res.log2_lp >= math.log2(max(1, res.true_count)) - 1e-6
        assert res.log2_lp <= res.log2_c6_formula + 1e-6
        assert res.log2_lp <= res.log2_agm + 1e-6


class TestAppendixB:
    def test_example_b1_exact_numbers(self):
        res = run_example_b1(n=256)
        assert res.true_count == 256
        assert res.log2_claim_modular == pytest.approx(16 / 3, abs=1e-6)
        assert res.log2_polymatroid == pytest.approx(8.0, abs=1e-6)
        assert res.modular_undershoots

    def test_theorem_b2_agreement_pattern(self):
        rows = run_theorem_b2(m=256, lengths=(3, 4))
        for r in rows:
            assert r.agree == r.applicable, (r.cycle_length, r.p)
            assert r.log2_modular <= r.log2_polymatroid + 1e-9
