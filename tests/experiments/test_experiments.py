"""Shape tests for the experiment modules at reduced scale.

The full-scale runs live in benchmarks/ (one per paper table/figure);
these tests exercise the same code paths quickly and pin the qualitative
claims that must survive any re-generation of the synthetic data.
"""

import math

import pytest

from repro.experiments.cycle import cycle_query, run_cycle_experiment
from repro.experiments.dsb_gap import run_dsb_gap_experiment, witness_instance
from repro.experiments.evaluation_runtime import run_evaluation_experiment
from repro.experiments.job import run_job_experiment
from repro.experiments.lp_scaling import path_query, run_lp_scaling
from repro.experiments.nonshannon import (
    run_nonshannon_experiment,
    theorem_d3_query,
    theorem_d3_statistics,
)
from repro.experiments.norm_ablation import run_norm_ablation
from repro.experiments.normal_vs_product import run_normal_vs_product
from repro.experiments.one_join import run_one_join_experiment
from repro.experiments.triangle import run_triangle_experiment
from repro.experiments.harness import (
    format_scientific,
    format_table,
    ratio_to_true,
)


class TestHarness:
    def test_ratio_to_true(self):
        assert ratio_to_true(10.0, 512) == pytest.approx(2.0)
        assert ratio_to_true(math.inf, 10) == math.inf
        assert math.isnan(ratio_to_true(3.0, 0))

    def test_format_scientific(self):
        assert format_scientific(1.9) == "1.90E+00"
        assert format_scientific(math.inf) == "inf"
        assert format_scientific(float("nan")) == "n/a"

    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [(1, 2), (33, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "--" in lines[1]


class TestTriangleAndOneJoin:
    def test_triangle_small(self):
        rows = run_triangle_experiment(datasets=["ca-GrQc"], max_p=3)
        (row,) = rows
        assert row.ratio_l2 <= row.ratio_l1_inf <= row.ratio_l1 + 1e-9
        assert row.ratio_l2 >= 1.0

    def test_one_join_small(self):
        (row,) = run_one_join_experiment(datasets=["ca-GrQc"])
        assert row.ratio_l2 == pytest.approx(1.0, abs=1e-6)
        assert row.ratio_estimator < 1.0


class TestJob:
    def test_subset_of_queries(self):
        rows = run_job_experiment(query_ids=(1, 3, 7), scale=0.1)
        assert [r.query_id for r in rows] == [1, 3, 7]
        for r in rows:
            assert 1.0 - 1e-9 <= r.ratio_ours <= r.ratio_panda + 1e-9
            assert r.ratio_panda <= r.ratio_agm + 1e-9
            assert math.inf in r.norms_used

    def test_norm_ablation_monotone(self):
        families = ((1.0,), (1.0, math.inf), (1.0, 2.0, math.inf))
        rows = run_norm_ablation(
            query_ids=(1, 3), families=families, scale=0.1
        )
        assert rows[0].geomean_ratio >= rows[1].geomean_ratio
        assert rows[1].geomean_ratio >= rows[2].geomean_ratio


class TestCycle:
    def test_cycle_query_shape(self):
        q = cycle_query(4)
        assert len(q.atoms) == 4
        assert q.num_variables == 4

    def test_cycle_query_rejects_short(self):
        with pytest.raises(ValueError):
            cycle_query(2)

    def test_p2_experiment(self):
        exp = run_cycle_experiment(2, m=512)
        assert exp.best_q == 2.0
        assert 2.0 in exp.lp_norms_used
        best = min(r.log2_bound for r in exp.rows)
        assert abs(exp.log2_lp - best) < 0.5


class TestDsbGap:
    def test_small_scale(self):
        res = run_dsb_gap_experiment(m=729, max_p=6)
        assert res.dsb_exponent < res.lp_exponent
        assert res.witness_satisfies_stats
        assert abs(res.log2_lp - res.log2_certificate) < 0.2

    def test_witness_shape(self):
        db = witness_instance(729)
        # |Q'| = M^{2/3}·M^{1/9}·M^{1/3} = M^{10/9}
        from repro.evaluation import acyclic_count
        from repro.query import parse_query

        q = parse_query("g(x,y,z) :- R(x,y), S(y,z)")
        assert acyclic_count(q, db) == 81 * 2 * 9  # 729^{2/3}=81, deg 2 & 9


class TestNormalVsProduct:
    def test_small_b(self):
        res = run_normal_vs_product(8.0)
        assert res.log2_lp_bound == pytest.approx(8.0)
        assert res.normal_satisfies and res.product_satisfies
        assert res.normal_count >= 2 ** 7
        assert math.log2(res.product_count) <= res.log2_product_limit + 1e-9


class TestNonShannon:
    def test_gap_exact(self):
        res = run_nonshannon_experiment(k=2.0)
        assert res.log2_polymatroid == pytest.approx(8.0, abs=1e-5)
        assert res.log2_with_zhang_yeung == pytest.approx(70 / 9, abs=1e-5)

    def test_figure2_feasible_for_statistics(self):
        # the Fig. 2 polymatroid certifies the polymatroid LP ≥ 4
        from repro.entropy import figure2_polymatroid

        h = figure2_polymatroid()
        query = theorem_d3_query()
        for stat in theorem_d3_statistics(1.0):
            cond = stat.conditional
            inv_p = 0.0 if stat.p == math.inf else 1.0 / stat.p
            value = inv_p * h.h(sorted(cond.u)) + h.conditional(
                sorted(cond.v), sorted(cond.u)
            )
            assert value <= stat.log2_bound + 1e-9
        assert h.h(query.variables) == 4.0

    def test_query_is_alpha_acyclic(self):
        from repro.query import is_alpha_acyclic

        assert is_alpha_acyclic(theorem_d3_query())


class TestRuntimeAndScaling:
    def test_evaluation_runtime_small(self):
        rows = run_evaluation_experiment("ca-GrQc")
        for r in rows:
            assert r.output_matches
            assert r.within_budget

    def test_lp_scaling_agreement(self):
        rows = run_lp_scaling(lengths=(2, 3), polymatroid_max_vars=5)
        assert all(r.bounds_agree for r in rows)

    def test_path_query_shape(self):
        q = path_query(3)
        assert q.num_variables == 4
        assert len(q.atoms) == 3
