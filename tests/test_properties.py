"""Property-based tests (hypothesis) for the library's core invariants.

The paper's theorems become executable properties on random instances:

* Theorem 1.1 soundness: every LP bound dominates the true output size;
* Lemma 4.1: (1/p)·h(U) + h(V|U) ≤ log2 ‖deg(V|U)‖_p on empirical entropies;
* Theorem 6.1: normal cone = polymatroid cone for simple statistics;
* evaluator agreement: WCOJ = hash join = join-tree counting;
* Lemma 2.5: partitions are disjoint covers whose parts strongly satisfy;
* Lemma A.1: norms determine the degree sequence;
* Eq. 38: domain-product entropies add.
"""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import collect_statistics, lp_bound
from repro.core.degree import degree_sequence
from repro.core.norms import log2_norm, lp_norm, sequence_from_norms
from repro.entropy import entropy_of_relation, zhang_yeung_coefficients
from repro.estimators import agm_bound, agm_bound_lp, dsb_single_join
from repro.evaluation import acyclic_count, count_query, evaluate_left_deep
from repro.evaluation.partitioning import (
    partition_for_statistic,
    strongly_satisfies,
)
from repro.query import parse_query
from repro.relational import Database, Relation
from repro.tightness import domain_product, normal_relation

SETTINGS = settings(max_examples=40, deadline=None)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
small_pairs = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=1, max_size=40
)

tiny_triples = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)),
    min_size=1,
    max_size=25,
)

norm_ps = st.sampled_from([1.0, 1.5, 2.0, 3.0, 4.0, math.inf])


def _rel(pairs, attrs=("x", "y")):
    return Relation(attrs, pairs)


# ---------------------------------------------------------------------------
# norms
# ---------------------------------------------------------------------------
class TestNormProperties:
    @SETTINGS
    @given(
        st.lists(st.integers(1, 50), min_size=1, max_size=15),
        norm_ps,
        norm_ps,
    )
    def test_norms_decreasing_in_p(self, degrees, p, q):
        lo, hi = sorted([p, q])
        assert log2_norm(degrees, hi) <= log2_norm(degrees, lo) + 1e-9

    @SETTINGS
    @given(st.lists(st.integers(1, 50), min_size=1, max_size=15), norm_ps)
    def test_norm_bounds(self, degrees, p):
        value = log2_norm(degrees, p)
        assert value >= math.log2(max(degrees)) - 1e-9  # ≥ ℓ∞
        assert value <= math.log2(sum(degrees)) + 1e-9  # ≤ ℓ1

    @SETTINGS
    @given(st.lists(st.integers(1, 9), min_size=1, max_size=4))
    def test_lemma_a1_roundtrip(self, degrees):
        # repeated degrees make the inverse map ill-conditioned (multiple
        # polynomial roots shift by ~eps^{1/multiplicity}), hence the loose
        # tolerance; exact-recovery cases live in tests/core/test_norms.py.
        norms = [lp_norm(degrees, float(k)) for k in range(1, len(degrees) + 1)]
        recovered = sequence_from_norms(norms, tol=1e-2)
        assert np.allclose(
            recovered, sorted(degrees, reverse=True), rtol=0.06, atol=0.06
        )


# ---------------------------------------------------------------------------
# Lemma 4.1 and entropy structure
# ---------------------------------------------------------------------------
class TestEntropyProperties:
    @SETTINGS
    @given(tiny_triples, norm_ps)
    def test_lemma_41(self, triples, p):
        r = Relation(("a", "b", "c"), triples)
        h = entropy_of_relation(r)
        seq = degree_sequence(r, ["b", "c"], ["a"])
        inv_p = 0.0 if p == math.inf else 1.0 / p
        lhs = inv_p * h.h(["a"]) + h.conditional(["b", "c"], ["a"])
        assert lhs <= log2_norm(seq, p) + 1e-9

    @SETTINGS
    @given(tiny_triples)
    def test_empirical_entropy_is_polymatroid(self, triples):
        r = Relation(("a", "b", "c"), triples)
        assert entropy_of_relation(r).is_polymatroid(tol=1e-8)

    @SETTINGS
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2),
                st.integers(0, 2),
                st.integers(0, 2),
                st.integers(0, 2),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_zhang_yeung_on_entropic_vectors(self, rows):
        r = Relation(("A", "B", "X", "Y"), rows)
        c = zhang_yeung_coefficients(("A", "B", "X", "Y"))
        assert float(c @ entropy_of_relation(r).values) >= -1e-8

    @SETTINGS
    @given(
        st.integers(1, 4),
        st.integers(1, 4),
        st.sampled_from([("x",), ("y",), ("x", "y")]),
        st.sampled_from([("x",), ("y",), ("x", "y")]),
    )
    def test_domain_product_entropy_adds(self, n1, n2, w1, w2):
        a = normal_relation(("x", "y"), [(w1, n1)])
        b = normal_relation(("x", "y"), [(w2, n2)])
        product = domain_product(a, b)
        ha = entropy_of_relation(a).values
        hb = entropy_of_relation(b).values
        hp = entropy_of_relation(product).values
        assert np.allclose(hp, ha + hb, atol=1e-9)


# ---------------------------------------------------------------------------
# Theorem 1.1 soundness on random data
# ---------------------------------------------------------------------------
class TestSoundness:
    @SETTINGS
    @given(small_pairs, small_pairs)
    def test_join_bound_dominates_truth(self, r_pairs, s_pairs):
        db = Database(
            {"R": _rel(r_pairs), "S": _rel(s_pairs, attrs=("y", "z"))}
        )
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
        stats = collect_statistics(q, db, ps=[1.0, 2.0, 3.0, math.inf])
        truth = acyclic_count(q, db)
        result = lp_bound(stats, query=q)
        assert result.log2_bound >= math.log2(max(1, truth)) - 1e-6

    @SETTINGS
    @given(small_pairs)
    def test_triangle_bound_dominates_truth(self, pairs):
        db = Database({"R": _rel(pairs)})
        q = parse_query("Q(x,y,z) :- R(x,y), R(y,z), R(z,x)")
        stats = collect_statistics(q, db, ps=[1.0, 2.0, math.inf])
        truth = count_query(q, db)
        result = lp_bound(stats, query=q)
        assert result.log2_bound >= math.log2(max(1, truth)) - 1e-6

    @SETTINGS
    @given(small_pairs)
    def test_star_bound_dominates_truth(self, pairs):
        db = Database({"R": _rel(pairs)})
        q = parse_query("Q(m,a,b) :- R(m,a), R(m,b)")
        stats = collect_statistics(q, db, ps=[1.0, 2.0, math.inf])
        truth = count_query(q, db)
        assert lp_bound(stats, query=q).log2_bound >= math.log2(
            max(1, truth)
        ) - 1e-6


# ---------------------------------------------------------------------------
# Theorem 6.1 cone agreement and Theorem 5.2 duality
# ---------------------------------------------------------------------------
class TestConeAgreement:
    @SETTINGS
    @given(small_pairs, small_pairs)
    def test_normal_equals_polymatroid_for_simple_stats(
        self, r_pairs, s_pairs
    ):
        db = Database(
            {"R": _rel(r_pairs), "S": _rel(s_pairs, attrs=("y", "z"))}
        )
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
        stats = collect_statistics(q, db, ps=[1.0, 2.0, math.inf])
        normal = lp_bound(stats, query=q, cone="normal")
        poly = lp_bound(stats, query=q, cone="polymatroid")
        assert abs(normal.log2_bound - poly.log2_bound) < 1e-6

    @SETTINGS
    @given(small_pairs)
    def test_strong_duality_certificate(self, pairs):
        db = Database({"R": _rel(pairs)})
        q = parse_query("Q(x,y,z) :- R(x,y), R(y,z)")
        stats = collect_statistics(q, db, ps=[1.0, 2.0, math.inf])
        result = lp_bound(stats, query=q)
        from repro.core import verify_certificate

        assert verify_certificate(result)

    @SETTINGS
    @given(small_pairs, small_pairs)
    def test_agm_routes_agree(self, r_pairs, s_pairs):
        db = Database(
            {"R": _rel(r_pairs), "S": _rel(s_pairs, attrs=("y", "z"))}
        )
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
        direct = agm_bound(q, db)
        via_lp = agm_bound_lp(q, db).log2_bound
        assert abs(direct - via_lp) < 1e-6


# ---------------------------------------------------------------------------
# evaluators agree
# ---------------------------------------------------------------------------
class TestEvaluatorAgreement:
    @SETTINGS
    @given(small_pairs, small_pairs)
    def test_three_evaluators_agree_on_join(self, r_pairs, s_pairs):
        db = Database(
            {"R": _rel(r_pairs), "S": _rel(s_pairs, attrs=("y", "z"))}
        )
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
        wcoj = count_query(q, db)
        dp = acyclic_count(q, db)
        materialised = len(evaluate_left_deep(q, db))
        assert wcoj == dp == materialised

    @SETTINGS
    @given(small_pairs)
    def test_wcoj_matches_hash_join_on_triangle(self, pairs):
        db = Database({"R": _rel(pairs)})
        q = parse_query("Q(x,y,z) :- R(x,y), R(y,z), R(z,x)")
        assert count_query(q, db) == len(evaluate_left_deep(q, db))

    @SETTINGS
    @given(small_pairs, small_pairs)
    def test_dsb_dominates_truth(self, r_pairs, s_pairs):
        db = Database(
            {"R": _rel(r_pairs), "S": _rel(s_pairs, attrs=("y", "z"))}
        )
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
        assert dsb_single_join(q, db) >= acyclic_count(q, db)


# ---------------------------------------------------------------------------
# Lemma 2.5 partitioning
# ---------------------------------------------------------------------------
class TestPartitioningProperties:
    @SETTINGS
    @given(small_pairs, st.sampled_from([1.5, 2.0, 3.0]))
    def test_partition_is_disjoint_cover_of_strong_parts(self, pairs, p):
        r = _rel(pairs)
        seq = degree_sequence(r, ["x"], ["y"])
        b = log2_norm(seq, p)
        parts = partition_for_statistic(r, ["x"], ["y"], p, b)
        seen = set()
        for part in parts:
            assert strongly_satisfies(part, ["x"], ["y"], p, b)
            for row in part:
                assert row not in seen
                seen.add(row)
        assert seen == set(r)
