"""The budgeted LRU cache and the solver's bounded memo layers.

The cache is the shared growth bound for every serving-stack memo
(`core/lru.py`): these tests pin its eviction order, budget
enforcement, byte accounting, and the solver-level behaviours built on
it — bounded assembly/result memos that recompute evicted entries
bit-identically, and the thread-local ``last_solve_cached`` flag that
replaced the racy shared-counter comparison.
"""

import math
import threading

import numpy as np
import pytest

from repro import Database, collect_statistics, lp_bound, parse_query
from repro.core import BoundSolver, LruCache, approx_bytes
from repro.datasets import power_law_graph

TRIANGLE = "Q(x,y,z) :- R(x,y), R(y,z), R(z,x)"
PS = (1.0, 2.0, math.inf)


class TestLruCache:
    def test_entry_budget_evicts_least_recent(self):
        cache = LruCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a: b is now least recent
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_peek_does_not_refresh(self):
        cache = LruCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.peek("a")  # recency-neutral: a stays least recent
        cache.put("c", 3)
        assert "a" not in cache
        assert cache.peek("a") is None
        assert cache.peek("b") == 2

    def test_touch_refreshes_after_peek(self):
        cache = LruCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.touch("a")
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache

    def test_byte_budget_is_enforced(self):
        cache = LruCache(max_bytes=10_000, sizer=lambda v: 3_000)
        for key in range(5):
            cache.put(key, object())
        assert len(cache) == 3  # 3 × 3000 ≤ 10000 < 4 × 3000
        assert cache.current_bytes == 9_000
        assert cache.evictions == 2
        assert set(cache) == {2, 3, 4}

    def test_oversized_single_entry_is_still_admitted(self):
        cache = LruCache(max_bytes=100, sizer=lambda v: 1_000)
        cache.put("big", "value")
        assert cache.peek("big") == "value"
        assert len(cache) == 1
        cache.put("bigger", "value2")
        assert len(cache) == 1
        assert cache.peek("bigger") == "value2"

    def test_replacement_reprices(self):
        sizes = {"small": 10, "large": 500}
        cache = LruCache(max_bytes=1_000, sizer=lambda v: sizes[v])
        cache.put("k", "small")
        assert cache.current_bytes == 10
        cache.put("k", "large")
        assert cache.current_bytes == 500
        assert len(cache) == 1

    def test_add_keeps_incumbent(self):
        cache = LruCache(max_entries=4)
        first = object()
        second = object()
        assert cache.add("k", first) is first
        assert cache.add("k", second) is first

    def test_pop_and_clear_release_bytes(self):
        cache = LruCache(max_bytes=1_000, sizer=lambda v: 100)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.pop("a") == 1
        assert cache.current_bytes == 100
        cache.clear()
        assert cache.current_bytes == 0
        assert len(cache) == 0

    def test_stats_shape(self):
        cache = LruCache(max_entries=8, max_bytes=1 << 20)
        cache.put("a", np.zeros(16))
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["max_entries"] == 8
        assert stats["max_bytes"] == 1 << 20
        assert stats["evictions"] == 0

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            LruCache(max_entries=0)
        with pytest.raises(ValueError):
            LruCache(max_bytes=0)


class TestApproxBytes:
    def test_numpy_counts_buffer(self):
        arr = np.zeros(1024, dtype=np.int64)
        assert approx_bytes(arr) >= arr.nbytes

    def test_containers_recurse(self):
        small = approx_bytes({"k": [1, 2]})
        big = approx_bytes({"k": [np.zeros(4096)]})
        assert big > small + 4096 * 8 - 1

    def test_cycles_terminate(self):
        a = {}
        a["self"] = a
        assert approx_bytes(a) > 0

    def test_objects_descend_into_dict(self):
        class Holder:
            def __init__(self):
                self.payload = np.zeros(2048)

        assert approx_bytes(Holder()) >= 2048 * 8


@pytest.fixture(scope="module")
def db():
    return Database({"R": power_law_graph(100, 600, 0.7, seed=3)})


@pytest.fixture(scope="module")
def stats(db):
    query = parse_query(TRIANGLE)
    return query, collect_statistics(query, db, ps=PS)


class TestBoundedSolverCaches:
    def test_result_memo_evicts_and_recomputes_identically(self, stats):
        query, statistics = stats
        solver = BoundSolver(max_cached_results=1)
        first = solver.solve(statistics, query=query)
        # a different variable order is a different memo entry
        other = solver.solve(
            statistics, query=query, variables=("z", "y", "x")
        )
        assert solver.cached_results() == 1  # the first was evicted
        again = solver.solve(statistics, query=query)
        assert not solver.last_solve_cached  # recomputed, not memo-served
        assert again.log2_bound == first.log2_bound
        assert other.status == "optimal"
        assert solver.cache_stats()["results"]["evictions"] >= 2

    def test_assembly_cache_entry_cap(self, stats):
        query, statistics = stats
        solver = BoundSolver(max_cached_assemblies=1)
        solver.solve(statistics, query=query)
        solver.solve(statistics, query=query, variables=("z", "y", "x"))
        assert solver.cached_assemblies() == 1
        # evicted assemblies are rebuilt: same bound, bit-identical path
        result = solver.solve(statistics, query=query)
        oracle = lp_bound(statistics, query=query)
        assert result.log2_bound == oracle.log2_bound

    def test_byte_budget_bounds_result_memo(self, stats):
        query, statistics = stats
        solver = BoundSolver(result_cache_bytes=1)
        solver.solve(statistics, query=query)
        solver.solve(statistics, query=query, variables=("z", "y", "x"))
        # a single (oversized) entry may remain; growth is bounded
        assert solver.cached_results() == 1

    def test_last_solve_cached_is_per_thread(self, stats):
        query, statistics = stats
        solver = BoundSolver()
        solver.solve(statistics, query=query)  # prime the memo
        flags = {}
        barrier = threading.Barrier(2)

        def warm():
            barrier.wait()
            solver.solve(statistics, query=query)
            flags["warm"] = solver.last_solve_cached

        def cold():
            barrier.wait()
            solver.solve(
                statistics, query=query, variables=("z", "y", "x")
            )
            flags["cold"] = solver.last_solve_cached

        threads = [threading.Thread(target=warm), threading.Thread(target=cold)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert flags == {"warm": True, "cold": False}

    def test_last_solve_cached_false_without_memo(self, stats):
        query, statistics = stats
        solver = BoundSolver(memoize_results=False)
        solver.solve(statistics, query=query)
        solver.solve(statistics, query=query)
        assert not solver.last_solve_cached
