"""The batched bound pipeline must be bit-identical to the one-shot path.

``StatisticsCatalog.precompute`` + ``BoundSolver`` vs
``collect_statistics`` + ``lp_bound`` across the E1–E9 query families,
plus cache-hit accounting on the catalog and solver and determinism of
``lp_bound_many``.
"""

import math

import numpy as np
import pytest

from repro.core import (
    BoundSolver,
    BoundTask,
    BoundTaskError,
    StatisticsCatalog,
    collect_statistics,
    lp_bound,
    lp_bound_many,
)
from repro.core.catalog import plan_prefix_orders
from repro.datasets import power_law_graph
from repro.datasets.generators import alpha_beta_relation
from repro.datasets.imdb import imdb_database
from repro.datasets.job_queries import job_query
from repro.experiments.cycle import cycle_query
from repro.query import parse_query
from repro.relational import Database, Relation

PS = (1.0, 2.0, 3.0, math.inf)

#: One representative query per E1–E9 family shape.
E_FAMILY_QUERIES = [
    ("E1 triangle", parse_query("t(x,y,z) :- R(x,y), R(y,z), R(z,x)")),
    ("E2 one-join", parse_query("j(x,y,z) :- R(x,y), R(y,z)")),
    ("E4 cycle", cycle_query(4)),
    ("E5 gap", parse_query("g(x,y,z) :- R(x,y), S(y,z)")),
    ("E8 path", parse_query("p(a,b,c,d) :- R(a,b), R(b,c), R(c,d)")),
    ("E12 LW", parse_query("lw(x,y,z) :- R(x,y), R(y,z), R(x,z)")),
]


@pytest.fixture(scope="module")
def pipeline_db():
    edges = power_law_graph(400, 2000, 0.7, seed=5)
    s = alpha_beta_relation(0.0, 2.0 / 3.0, 729).with_name("S")
    return Database(
        {
            "R": edges,
            "S": s,
            **{f"R{i}": edges for i in range(4)},
        }
    )


def assert_results_identical(a, b):
    assert a.log2_bound == b.log2_bound
    assert a.status == b.status
    assert a.cone == b.cone
    assert a.variables == b.variables
    if a.dual_weights is None:
        assert b.dual_weights is None
    else:
        assert np.array_equal(a.dual_weights, b.dual_weights)
    if a.h_values is None:
        assert b.h_values is None
    else:
        assert np.array_equal(a.h_values, b.h_values)
    assert a.normal_coefficients == b.normal_coefficients
    used_a = [(str(s), w) for s, w in a.used_statistics()]
    used_b = [(str(s), w) for s, w in b.used_statistics()]
    assert used_a == used_b


class TestEquivalence:
    def test_precompute_matches_collect_statistics(self, pipeline_db):
        queries = [q for _, q in E_FAMILY_QUERIES]
        catalog = StatisticsCatalog(pipeline_db)
        batched = catalog.precompute(queries, ps=PS)
        for query, stats in zip(queries, batched):
            direct = collect_statistics(query, pipeline_db, ps=PS)
            got = [
                (str(s.conditional), s.p, s.guard, s.log2_bound)
                for s in stats
            ]
            want = [
                (str(s.conditional), s.p, s.guard, s.log2_bound)
                for s in direct
            ]
            assert got == want  # same statistics, same order, same bits

    @pytest.mark.parametrize("label,query", E_FAMILY_QUERIES)
    @pytest.mark.parametrize("cone", ["auto", "normal", "polymatroid"])
    def test_solver_matches_lp_bound(self, pipeline_db, label, query, cone):
        catalog = StatisticsCatalog(pipeline_db)
        (stats,) = catalog.precompute([query], ps=PS)
        one_shot = lp_bound(
            collect_statistics(query, pipeline_db, ps=PS), query=query, cone=cone
        )
        solved = BoundSolver().solve(stats, query=query, cone=cone)
        assert_results_identical(one_shot, solved)

    @pytest.mark.parametrize(
        "family", [(1.0,), (1.0, math.inf), (1.0, 2.0), (2.0,), PS]
    )
    @pytest.mark.parametrize("cone", ["auto", "polymatroid"])
    def test_solve_family_matches_restrict_ps(self, pipeline_db, family, cone):
        query = parse_query("t(x,y,z) :- R(x,y), R(y,z), R(z,x)")
        stats = collect_statistics(query, pipeline_db, ps=PS)
        one_shot = lp_bound(
            stats.restrict_ps(family), query=query, cone=cone
        )
        solver = BoundSolver()
        solver.solve(stats, query=query, cone=cone)  # warm the full assembly
        sliced = solver.solve_family(stats, family, query=query, cone=cone)
        assert_results_identical(one_shot, sliced)

    def test_job_queries_match(self):
        db = imdb_database(scale=0.05, seed=7)
        queries = [job_query(qid) for qid in (1, 7, 19, 33)]
        catalog = StatisticsCatalog(db)
        job_ps = tuple(float(p) for p in range(1, 11)) + (math.inf,)
        batched = catalog.precompute(queries, ps=job_ps)
        solver = BoundSolver()
        for query, stats in zip(queries, batched):
            one_shot = lp_bound(
                collect_statistics(query, db, ps=job_ps), query=query
            )
            assert_results_identical(
                one_shot, solver.solve(stats, query=query)
            )

    def test_memo_hit_rebinds_statistics(self, pipeline_db):
        query = parse_query("t(x,y,z) :- R(x,y), R(y,z), R(z,x)")
        solver = BoundSolver()
        stats_a = collect_statistics(query, pipeline_db, ps=PS)
        stats_b = collect_statistics(query, pipeline_db, ps=PS)
        first = solver.solve(stats_a, query=query)
        second = solver.solve(stats_b, query=query)
        assert solver.result_hits == 1
        assert_results_identical(first, second)
        assert second.statistics is stats_b  # callers see their own set


class TestCatalogAccounting:
    def test_precompute_shares_lexsorts(self, pipeline_db):
        queries = [q for _, q in E_FAMILY_QUERIES]
        catalog = StatisticsCatalog(pipeline_db)
        catalog.precompute(queries, ps=PS)
        assert catalog.sequences_batched == catalog.cached_sequences()
        # prefix sharing: strictly fewer sorts than sequences (a binary
        # relation's 5-conditional family needs only 2 lexsorts)
        assert catalog.lexsorts_performed < catalog.cached_sequences()

    def test_one_shot_path_pays_one_sort_per_sequence(self, pipeline_db):
        catalog = StatisticsCatalog(pipeline_db)
        catalog.sequence("R", ["x"], ["y"])
        catalog.sequence("R", ["y"], ["x"])
        assert catalog.lexsorts_performed == 2
        assert catalog.sequences_batched == 0

    def test_warm_precompute_adds_no_sorts(self, pipeline_db):
        queries = [q for _, q in E_FAMILY_QUERIES]
        catalog = StatisticsCatalog(pipeline_db)
        catalog.precompute(queries, ps=PS)
        sorts = catalog.lexsorts_performed
        again = catalog.precompute(queries, ps=PS)
        assert catalog.lexsorts_performed == sorts
        assert len(again) == len(queries)

    def test_fallback_relation_still_served(self):
        # non-integer values: no columnar twin, per-split fallback
        rows = [(f"u{i % 7}", f"v{i % 5}") for i in range(40)]
        db = Database({"T": Relation(("x", "y"), rows)})
        query = parse_query("q(a,b,c) :- T(a,b), T(b,c)")
        catalog = StatisticsCatalog(db)
        (stats,) = catalog.precompute([query], ps=PS)
        direct = collect_statistics(query, db, ps=PS)
        got = [(str(s.conditional), s.p, round(s.log2_bound, 12)) for s in stats]
        want = [(str(s.conditional), s.p, round(s.log2_bound, 12)) for s in direct]
        assert got == want
        assert catalog.sequences_batched == catalog.cached_sequences()

    def test_repeated_variable_atoms_use_uncached_path(self, pipeline_db):
        query = parse_query("d(x,y) :- R(x,x), R(x,y)")
        catalog = StatisticsCatalog(pipeline_db)
        (stats,) = catalog.precompute([query], ps=PS)
        direct = collect_statistics(query, pipeline_db, ps=PS)
        got = sorted((str(s.conditional), s.p, s.log2_bound) for s in stats)
        want = sorted((str(s.conditional), s.p, s.log2_bound) for s in direct)
        assert got == want


class TestPlanPrefixOrders:
    def test_binary_family_needs_two_orders(self):
        requests = [
            ((), ("x", "y")),
            ((), ("x",)),
            ((), ("y",)),
            (("x",), ("y",)),
            (("y",), ("x",)),
        ]
        orders = plan_prefix_orders(requests)
        assert len(orders) == 2
        served = [req for _, assigned in orders for *_, req in assigned]
        assert sorted(served) == sorted(requests)

    def test_split_offsets_are_consistent(self):
        requests = [(("a",), ("b", "c")), ((), ("a", "b", "c")), ((), ("a",))]
        for cols, assigned in plan_prefix_orders(requests):
            for u_len, uv_len, (u, v) in assigned:
                assert set(cols[:u_len]) == set(u)
                assert set(cols[u_len:uv_len]) == set(v)


class TestSolverAccounting:
    def test_structure_cache_hits_across_b_swaps(self, pipeline_db):
        query = parse_query("t(x,y,z) :- R(x,y), R(y,z), R(z,x)")
        stats = collect_statistics(query, pipeline_db, ps=PS)
        solver = BoundSolver(memoize_results=False)
        solver.solve(stats, query=query)
        assert solver.assembly_misses == 1
        from dataclasses import replace

        scaled = [replace(s, log2_bound=s.log2_bound + 1.0) for s in stats]
        solver.solve(scaled, query=query)
        assert solver.assembly_hits == 1
        assert solver.solves == 2

    def test_family_slice_counter(self, pipeline_db):
        query = parse_query("t(x,y,z) :- R(x,y), R(y,z), R(z,x)")
        stats = collect_statistics(query, pipeline_db, ps=PS)
        solver = BoundSolver()
        solver.solve_family(stats, (1.0, 2.0), query=query, cone="polymatroid")
        assert solver.family_slices == 1

    def test_extra_inequalities_bypass_cache(self, pipeline_db):
        query = parse_query("t(x,y,z) :- R(x,y), R(y,z), R(z,x)")
        stats = collect_statistics(query, pipeline_db, ps=PS)
        solver = BoundSolver()
        extra = np.zeros(8)
        extra[3] = 1.0  # a trivially valid inequality h({x,y}) >= 0
        result = solver.solve(
            stats, query=query, cone="polymatroid", extra_inequalities=[extra]
        )
        assert result.status == "optimal"
        assert solver.cached_assemblies() == 0


class TestLpBoundMany:
    def _tasks(self, pipeline_db):
        tasks = []
        for _, query in E_FAMILY_QUERIES:
            stats = collect_statistics(query, pipeline_db, ps=PS)
            tasks.append(BoundTask(stats, query=query))
            tasks.append(BoundTask(stats, query=query, family=(1.0, math.inf)))
        return tasks

    def test_serial_matches_one_shot_in_order(self, pipeline_db):
        tasks = self._tasks(pipeline_db)
        results = lp_bound_many(tasks, executor="serial")
        for task, result in zip(tasks, results):
            stats = task.statistics
            if task.family is not None:
                stats = stats.restrict_ps(task.family)
            assert_results_identical(
                lp_bound(stats, query=task.query), result
            )

    def test_thread_pool_matches_serial(self, pipeline_db):
        tasks = self._tasks(pipeline_db)
        serial = lp_bound_many(tasks, executor="serial")
        threaded = lp_bound_many(tasks, executor="thread", max_workers=4)
        for a, b in zip(serial, threaded):
            assert_results_identical(a, b)

    def test_process_pool_matches_serial(self, pipeline_db):
        tasks = self._tasks(pipeline_db)[:4]
        serial = lp_bound_many(tasks, executor="serial")
        processed = lp_bound_many(tasks, executor="process", max_workers=2)
        for a, b in zip(serial, processed):
            assert_results_identical(a, b)

    def test_unknown_executor_rejected(self, pipeline_db):
        with pytest.raises(ValueError, match="unknown executor"):
            lp_bound_many([], executor="gpu")


class TestBoundTaskError:
    """A failing task must be reported with its identity attached."""

    def _tasks(self, pipeline_db):
        query = E_FAMILY_QUERIES[0][1]
        stats = collect_statistics(query, pipeline_db, ps=PS)
        good = BoundTask(stats, query=query)
        # statistics=None blows up inside the solver on every executor —
        # a stand-in for any mid-batch solver failure
        bad = BoundTask(None, query=parse_query("boom(x,y) :- R(x,y)"))
        return [good, bad, good]

    @pytest.mark.parametrize(
        "executor, workers",
        [("serial", None), ("thread", 2), ("process", 2)],
    )
    def test_failure_names_task_and_query(
        self, pipeline_db, executor, workers
    ):
        tasks = self._tasks(pipeline_db)
        with pytest.raises(BoundTaskError) as info:
            lp_bound_many(tasks, executor=executor, max_workers=workers)
        err = info.value
        assert err.index == 1
        assert err.task is tasks[1]
        assert "bound task 1" in str(err)
        assert "'boom'" in str(err)
        assert err.__cause__ is not None

    def test_anonymous_task_omits_query_name(self, pipeline_db):
        tasks = [BoundTask(None)]
        with pytest.raises(BoundTaskError) as info:
            lp_bound_many(tasks, executor="serial")
        assert str(info.value).startswith("bound task 0 failed:")
        assert "query" not in str(info.value)
