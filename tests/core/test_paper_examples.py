"""Tests that re-derive the paper's worked examples end to end.

Each test builds the example's statistics explicitly and checks the LP
against the hand-derived inequality from the paper — the closest thing to
mechanically verifying the paper's algebra.
"""

import math

import pytest

from repro.core import collect_statistics, lp_bound
from repro.core.conditionals import (
    AbstractStatistic,
    ConcreteStatistic,
    Conditional,
    StatisticsSet,
)
from repro.core.degree import degree_sequence
from repro.core.formulas import (
    chain_bound,
    join_l2,
    join_lp_lq,
    join_lp_lq_distinct,
    join_panda,
    loomis_whitney_l2,
)
from repro.core.norms import log2_norm
from repro.datasets import alpha_beta_relation
from repro.evaluation import acyclic_count
from repro.query import parse_query
from repro.query.query import Atom, ConjunctiveQuery
from repro.relational import Database


class TestExample21AlphaBeta:
    """Sec. 2.1 + C.3: on (1/3,1/3)-instances, (18) beats PANDA (17)."""

    @pytest.fixture(scope="class")
    def setup(self):
        m = 4096
        r = alpha_beta_relation(1 / 3, 1 / 3, m)
        db = Database({"R": r, "S": r})
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
        return m, db, q

    def test_formula_orders(self, setup):
        m, db, q = setup
        r = db["R"]
        seq_ba = degree_sequence(r, ["x"], ["y"])  # deg(X|Y) for R(x,y)
        seq_fw = degree_sequence(r, ["y"], ["x"])  # deg(Z|Y) under S(y,z)
        log2_size = math.log2(len(r))
        panda = join_panda(
            log2_size, log2_size,
            log2_norm(seq_ba, math.inf), log2_norm(seq_fw, math.inf),
        )
        l2 = join_l2(log2_norm(seq_ba, 2.0), log2_norm(seq_fw, 2.0))
        # paper: PANDA ≈ M^{4/3}, ℓ2 ≈ M — at least M^{1/6} apart here
        assert l2 < panda - math.log2(m) / 6

    def test_lp_matches_best_formula(self, setup):
        m, db, q = setup
        stats = collect_statistics(q, db, ps=[1.0, 2.0, math.inf])
        result = lp_bound(stats, query=q)
        truth = acyclic_count(q, db)
        assert 2 ** result.log2_bound >= truth
        assert 2.0 in result.norms_used()

    def test_eq48_with_distinct_count(self, setup):
        # (48) with p = q = 2 must beat its (p,q) = (1,∞) specialisation
        m, db, q = setup
        r = db["R"]
        seq = degree_sequence(r, ["x"], ["y"])
        log2_m_distinct = math.log2(r.distinct_count(("y",)))
        b22 = join_lp_lq_distinct(
            log2_norm(seq, 2.0), log2_norm(seq, 2.0), log2_m_distinct, 2, 2
        )
        b1inf = join_lp_lq_distinct(
            log2_norm(seq, 1.0), log2_norm(seq, math.inf), log2_m_distinct,
            1, math.inf,
        )
        assert b22 < b1inf

    def test_eq19_interpolates(self, setup):
        # (19) with (p,q)=(3,2) sits between pure-ℓ2 and pure-PANDA values
        m, db, q = setup
        r = db["R"]
        seq = degree_sequence(r, ["x"], ["y"])
        value = join_lp_lq(
            log2_norm(seq, 3.0), log2_norm(seq, 2.0), math.log2(len(r)), 3, 2
        )
        truth = acyclic_count(q, db)
        assert 2 ** value >= truth  # it is a valid bound


class TestChainQuery:
    """Example 2.2 / Appendix C.4: the path-query inequality (20)."""

    @pytest.fixture(scope="class")
    def setup(self):
        r = alpha_beta_relation(0.25, 0.25, 2048)
        names = ["R1", "R2", "R3", "R4"]
        db = Database({name: r for name in names})
        atoms = [
            Atom(name, (f"x{i}", f"x{i+1}")) for i, name in enumerate(names)
        ]
        return db, ConjunctiveQuery(atoms, name="chain")

    @pytest.mark.parametrize("p", [2.0, 3.0, 4.0])
    def test_formula_is_valid_bound(self, setup, p):
        db, q = setup
        r = db["R1"]
        seq_bw = degree_sequence(r, ["x"], ["y"])  # deg(X1|X2)-style
        seq_fw = degree_sequence(r, ["y"], ["x"])
        value = chain_bound(
            math.log2(len(r)),
            log2_norm(seq_bw, 2.0),
            [log2_norm(seq_fw, p - 1.0)] * (len(q.atoms) - 2),
            log2_norm(seq_fw, p),
            p,
        )
        truth = acyclic_count(q, db)
        assert 2 ** value >= truth

    def test_lp_beats_or_matches_formula(self, setup):
        db, q = setup
        stats = collect_statistics(
            q, db, ps=[1.0, 2.0, 3.0, 4.0, math.inf]
        )
        result = lp_bound(stats, query=q)
        r = db["R1"]
        seq_bw = degree_sequence(r, ["x"], ["y"])
        seq_fw = degree_sequence(r, ["y"], ["x"])
        for p in (2.0, 3.0, 4.0):
            formula = chain_bound(
                math.log2(len(r)),
                log2_norm(seq_bw, 2.0),
                [log2_norm(seq_fw, p - 1.0)] * (len(q.atoms) - 2),
                log2_norm(seq_fw, p),
                p,
            )
            assert result.log2_bound <= formula + 1e-6


class TestLoomisWhitney:
    """Appendix C.6: the 4-variable Loomis–Whitney query."""

    def _stats(self, l2_a, log2_b, l2_c, log2_d):
        atoms = {
            "A": Atom("A", ("X", "Y", "Z")),
            "B": Atom("B", ("Y", "Z", "W")),
            "C": Atom("C", ("Z", "W", "X")),
            "D": Atom("D", ("W", "X", "Y")),
        }
        return atoms, StatisticsSet(
            [
                ConcreteStatistic(
                    AbstractStatistic(
                        Conditional(frozenset({"Y", "Z"}), frozenset("X")), 2.0
                    ),
                    l2_a,
                    atoms["A"],
                ),
                ConcreteStatistic(
                    AbstractStatistic(
                        Conditional(frozenset({"Y", "Z", "W"})), 1.0
                    ),
                    log2_b,
                    atoms["B"],
                ),
                ConcreteStatistic(
                    AbstractStatistic(
                        Conditional(frozenset({"W", "X"}), frozenset("Z")), 2.0
                    ),
                    l2_c,
                    atoms["C"],
                ),
                ConcreteStatistic(
                    AbstractStatistic(
                        Conditional(frozenset({"W", "X", "Y"})), 1.0
                    ),
                    log2_d,
                    atoms["D"],
                ),
            ]
        )

    def test_lp_matches_or_beats_c6_formula(self):
        atoms, stats = self._stats(4.0, 9.0, 4.0, 9.0)
        q = ConjunctiveQuery(list(atoms.values()), name="LW4")
        result = lp_bound(stats, query=q, cone="polymatroid")
        formula = loomis_whitney_l2(4.0, 9.0, 4.0, 9.0)
        assert result.status == "optimal"
        assert result.log2_bound <= formula + 1e-6

    def test_simplicity_classification(self):
        _, stats = self._stats(1.0, 1.0, 1.0, 1.0)
        # (YZ|X) has |U| = 1 → simple (simplicity constrains U, not V);
        # cardinalities have U = ∅ → simple.  So the normal cone is exact
        # here too (Theorem 6.1) — verify the cones agree.
        assert stats.is_simple
        atoms, stats = self._stats(4.0, 9.0, 4.0, 9.0)
        q = ConjunctiveQuery(list(atoms.values()), name="LW4")
        normal = lp_bound(stats, query=q, cone="normal")
        poly = lp_bound(stats, query=q, cone="polymatroid")
        assert normal.log2_bound == pytest.approx(poly.log2_bound, abs=1e-6)
