"""Mechanisation of Appendix C.5's lower-bound arguments.

C.5 proves that the cycle bounds are *optimal* given their statistics by
exhibiting feasible polymatroids with large h(X):

* for the {1,∞} statistics (|R| ≤ N, ‖deg‖_∞ ≤ D, D² ≤ N) the normal
  polymatroid h(W) = log N + (|W|−2)·log D (h(∅)=0, singletons log N − log D
  …) — realised as (log N − 2 log D)·h_X + log D·Σ h_{X_i} — satisfies the
  statistics and reaches log N + (p−1)·log D, matching the PANDA bound;
* for the {1..q,∞} statistics (ℓr^r ≤ L for r ≤ q, ‖deg‖_∞ ≤ D, L ≤ N,
  L ≤ D^{q+1}) the *modular* polymatroid h(W) = |W|·(log L)/(q+1)
  satisfies them and reaches (p+1)·log L/(q+1), matching bound (21).

These tests build the witnesses explicitly, verify feasibility against
the statistics constraints, and check the LP cannot do better — i.e. the
LP value *equals* the witness value.
"""

import math

import pytest

from repro.core.conditionals import (
    AbstractStatistic,
    ConcreteStatistic,
    Conditional,
    StatisticsSet,
)
from repro.core.lp_bound import lp_bound
from repro.entropy import modular, normal, step_function
from repro.experiments.cycle import cycle_query


def _cycle_statistics(length, log2_n=None, log2_d=None, lq=None, qs=()):
    """Statistics on the length-cycle: cardinality, ℓ∞, and ℓq norms."""
    query = cycle_query(length)
    stats = []
    for atom in query.atoms:
        u, v = atom.variables
        if log2_n is not None:
            stats.append(
                ConcreteStatistic(
                    AbstractStatistic(Conditional(frozenset({u, v})), 1.0),
                    log2_n,
                    atom,
                )
            )
        if log2_d is not None:
            stats.append(
                ConcreteStatistic(
                    AbstractStatistic(
                        Conditional(frozenset({v}), frozenset({u})), math.inf
                    ),
                    log2_d,
                    atom,
                )
            )
        for q, value in qs:
            stats.append(
                ConcreteStatistic(
                    AbstractStatistic(
                        Conditional(frozenset({v}), frozenset({u})), q
                    ),
                    value,
                    atom,
                )
            )
    return query, StatisticsSet(stats)


def _check_feasible(h, stats, tol=1e-9):
    for stat in stats:
        cond = stat.conditional
        inv_p = 0.0 if stat.p == math.inf else 1.0 / stat.p
        value = inv_p * h.h(sorted(cond.u)) + h.conditional(
            sorted(cond.v), sorted(cond.u)
        )
        assert value <= stat.log2_bound + tol, (str(stat), value)


class TestOneInfWitness:
    """The {1,∞} lower bound: h = (logN − 2logD)·h_X + logD·Σ h_{Xi}."""

    @pytest.mark.parametrize("length", [3, 4, 5])
    def test_witness_feasible_and_matches_lp(self, length):
        log2_n, log2_d = 12.0, 4.0  # D² ≤ N holds
        query, stats = _cycle_statistics(
            length, log2_n=log2_n, log2_d=log2_d
        )
        variables = query.variables
        h = normal(
            variables,
            {frozenset(variables): log2_n - 2 * log2_d},
        )
        for v in variables:
            h = h + step_function(variables, [v]).scale(log2_d)
        _check_feasible(h, stats)
        expected = log2_n + (length - 2) * log2_d
        assert h.full == pytest.approx(expected)
        result = lp_bound(stats, query=query)
        # witness ⇒ LP ≥ expected; PANDA inequality (52) ⇒ LP ≤ expected
        assert result.log2_bound == pytest.approx(expected, abs=1e-6)

    def test_witness_is_polymatroid(self):
        query, _ = _cycle_statistics(4, log2_n=12.0, log2_d=4.0)
        variables = query.variables
        h = normal(variables, {frozenset(variables): 4.0})
        for v in variables:
            h = h + step_function(variables, [v]).scale(4.0)
        assert h.is_polymatroid()


class TestLqWitness:
    """The {1..q,∞} lower bound: the modular h(W) = |W|·logL/(q+1)."""

    @pytest.mark.parametrize("length,q", [(3, 2), (4, 3), (5, 4)])
    def test_witness_feasible_and_matches_lp(self, length, q):
        # L ≤ N and L ≤ D^{q+1}: choose logL = 10, logN = 10, logD = 10/(q+1)
        log2_l = 10.0
        log2_n = 10.0
        log2_d = log2_l / (q + 1)
        qs = [(float(r), log2_l / r) for r in range(2, q + 1)]
        query, stats = _cycle_statistics(
            length, log2_n=log2_n, log2_d=log2_d, qs=qs
        )
        variables = query.variables
        h = modular(
            variables, {v: log2_l / (q + 1) for v in variables}
        )
        _check_feasible(h, stats)
        expected = (length) * log2_l / (q + 1)
        assert h.full == pytest.approx(expected)
        result = lp_bound(stats, query=query)
        # bound (21) with the ℓq statistic gives exactly length·logL/(q+1):
        # each ℓq log-norm is logL/q, weight q/(q+1) per edge
        assert result.log2_bound == pytest.approx(expected, abs=1e-6)

    def test_paper_punchline_best_q_is_p(self):
        # with all norms available for the (p+1)-cycle, the LP lands at
        # (p+1)·logL/(p+1) = logL — the ℓp norm is the binding one
        p = 3
        length = p + 1
        log2_l = 10.0
        qs = [(float(r), log2_l / r) for r in range(2, p + 1)]
        query, stats = _cycle_statistics(
            length,
            log2_n=log2_l,
            log2_d=log2_l / (p + 1),
            qs=qs,
        )
        result = lp_bound(stats, query=query)
        assert result.log2_bound == pytest.approx(log2_l, abs=1e-6)
        assert float(p) in result.norms_used()
