"""Unit tests for ℓp-norms in log space and Lemma A.1."""

import math

import numpy as np
import pytest

from repro.core.norms import (
    log2_norm,
    lp_norm,
    norms_of_sequence,
    sequence_from_norms,
)


class TestLog2Norm:
    def test_l1_is_sum(self):
        assert log2_norm([1, 2, 3], 1.0) == pytest.approx(math.log2(6))

    def test_l2(self):
        assert log2_norm([3, 4], 2.0) == pytest.approx(math.log2(5))

    def test_linf_is_max(self):
        assert log2_norm([1, 7, 3], math.inf) == pytest.approx(math.log2(7))

    def test_single_element_all_p_agree(self):
        for p in (0.5, 1, 2, 10, math.inf):
            assert log2_norm([5], p) == pytest.approx(math.log2(5))

    def test_empty_sequence(self):
        assert log2_norm([], 2.0) == -math.inf
        assert lp_norm([], 2.0) == 0.0

    def test_no_overflow_for_large_p(self):
        # 10^5 degrees to the 30th power overflow float64; log space must not
        value = log2_norm([1e5] * 1000, 30.0)
        expected = math.log2(1e5) + math.log2(1000) / 30.0
        assert value == pytest.approx(expected)

    def test_rejects_nonpositive_p(self):
        with pytest.raises(ValueError):
            log2_norm([1.0], 0.0)

    def test_rejects_nonpositive_degrees(self):
        with pytest.raises(ValueError):
            log2_norm([1, 0, 2], 1.0)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            log2_norm(np.ones((2, 2)), 1.0)

    def test_monotone_decreasing_in_p(self):
        seq = [5, 3, 2, 2, 1, 1, 1]
        values = [log2_norm(seq, p) for p in (1, 1.5, 2, 3, 8, math.inf)]
        assert values == sorted(values, reverse=True)

    def test_fractional_p(self):
        # ℓ_{1/2} of (1, 1): (1 + 1)^2 = 4
        assert log2_norm([1, 1], 0.5) == pytest.approx(2.0)


class TestLinearNorm:
    def test_matches_direct_computation(self):
        seq = [4.0, 2.0, 1.0]
        assert lp_norm(seq, 3.0) == pytest.approx((4**3 + 2**3 + 1) ** (1 / 3))

    def test_norms_of_sequence(self):
        out = norms_of_sequence([2, 2], [1.0, 2.0, math.inf])
        assert out[1.0] == pytest.approx(4.0)
        assert out[2.0] == pytest.approx(math.sqrt(8))
        assert out[math.inf] == pytest.approx(2.0)


class TestLemmaA1:
    """sequence_from_norms inverts (ℓ1, …, ℓm) — Lemma A.1."""

    @pytest.mark.parametrize(
        "degrees",
        [
            [5.0],
            [3.0, 1.0],
            [4.0, 2.0, 1.0],
            [7.0, 7.0, 2.0],
            [10.0, 5.0, 3.0, 1.0],
        ],
    )
    def test_roundtrip(self, degrees):
        norms = [lp_norm(degrees, float(p)) for p in range(1, len(degrees) + 1)]
        recovered = sequence_from_norms(norms, tol=1e-4)
        assert np.allclose(recovered, sorted(degrees, reverse=True), atol=1e-5)

    def test_empty(self):
        assert sequence_from_norms([]).size == 0

    def test_single_norm(self):
        assert sequence_from_norms([6.0]) == pytest.approx([6.0])

    def test_inconsistent_norms_rejected(self):
        # ℓ2 > ℓ1 is impossible for non-negative sequences of length 2
        with pytest.raises(ValueError):
            sequence_from_norms([2.0, 10.0])
