"""Tests for non-simple (|U| = 2) statistics collection."""

import math

import pytest

from repro.core import collect_statistics, lp_bound
from repro.evaluation import count_query
from repro.query import parse_query
from repro.relational import Database, Relation


@pytest.fixture
def ternary_db():
    # T(a, b, c): c strongly determined by (a, b) pairs but not by either
    rows = []
    for a in range(6):
        for b in range(6):
            rows.append((a, b, (a * 7 + b) % 5))
            rows.append((a, b, (a * 7 + b + 1) % 5))
    return Database({"T": Relation(("x", "y", "z"), rows), "S": Relation(
        ("x", "y"), [(i % 6, j % 6) for i in range(6) for j in range(6)]
    )})


class TestCollection:
    def test_default_stays_simple(self, ternary_db):
        q = parse_query("Q(a,b,c) :- T(a,b,c), S(a,b)")
        stats = collect_statistics(q, ternary_db, ps=[2.0, math.inf])
        assert stats.is_simple

    def test_max_u_2_adds_pair_conditionals(self, ternary_db):
        q = parse_query("Q(a,b,c) :- T(a,b,c), S(a,b)")
        simple = collect_statistics(q, ternary_db, ps=[2.0, math.inf])
        wide = collect_statistics(
            q, ternary_db, ps=[2.0, math.inf], max_u_size=2
        )
        assert len(wide) > len(simple)
        assert not wide.is_simple
        pair_conds = [s for s in wide if len(s.conditional.u) == 2]
        assert pair_conds
        assert all(s.guard.relation == "T" for s in pair_conds)

    def test_invalid_max_u_rejected(self, ternary_db):
        q = parse_query("Q(a,b,c) :- T(a,b,c)")
        with pytest.raises(ValueError):
            collect_statistics(q, ternary_db, max_u_size=3)

    def test_measured_bounds_hold(self, ternary_db):
        q = parse_query("Q(a,b,c) :- T(a,b,c), S(a,b)")
        stats = collect_statistics(
            q, ternary_db, ps=[1.0, 2.0, math.inf], max_u_size=2
        )
        assert stats.holds_on(ternary_db)


class TestTightening:
    def test_pair_conditional_tightens_bound(self, ternary_db):
        # a small R(a,b) restricts the (a,b) pairs; T fans out by only
        # deg(z | a,b) = 2 per pair, but every *simple* statistic of T sees
        # degree ≥ 5 — only the non-simple (z | a,b) captures the pairwise
        # near-determinism, so max_u_size=2 must strictly tighten the bound.
        small_r = Relation(
            ("x", "y"), [(i, (3 * i + 1) % 6) for i in range(6)]
        )
        db = ternary_db.with_relation("S", small_r)
        q = parse_query("Q(a,b,c) :- T(a,b,c), S(a,b)")
        ps = [1.0, 2.0, math.inf]
        simple = lp_bound(collect_statistics(q, db, ps=ps), query=q)
        wide = lp_bound(
            collect_statistics(q, db, ps=ps, max_u_size=2),
            query=q,
            cone="polymatroid",
        )
        assert wide.cone == "polymatroid"
        assert wide.log2_bound < simple.log2_bound - 0.5
        truth = count_query(q, db)
        assert wide.log2_bound >= math.log2(max(1, truth)) - 1e-6
        # here the non-simple bound is exactly |S| · max deg(z|ab) = 6·2
        assert wide.log2_bound == pytest.approx(math.log2(12), abs=1e-6)
