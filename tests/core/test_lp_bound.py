"""Unit tests for the bound LP (Theorem 5.2) across cones.

The hand-derived bounds from the paper's examples serve as oracles:
Example 5.3 (triangle LP), Eq. (4)/(5) (triangle ℓ2/ℓ3), Eq. (17)/(18)
(single join), and the cross-cone agreement of Theorem 6.1.
"""

import math

import pytest

from repro.core import collect_statistics, lp_bound
from repro.core.conditionals import (
    AbstractStatistic,
    ConcreteStatistic,
    Conditional,
    StatisticsSet,
)
from repro.core.lp_bound import CONES
from repro.query import parse_query
from repro.query.query import Atom


def _triangle_stats(b_card, b_l2=None):
    """Symmetric triangle statistics on atoms R(x,y), S(y,z), T(z,x)."""
    atoms = {
        "R": Atom("R", ("x", "y")),
        "S": Atom("S", ("y", "z")),
        "T": Atom("T", ("z", "x")),
    }
    conds = {
        "R": Conditional(frozenset("y"), frozenset("x")),
        "S": Conditional(frozenset("z"), frozenset("y")),
        "T": Conditional(frozenset("x"), frozenset("z")),
    }
    stats = []
    for name, atom in atoms.items():
        full = Conditional(frozenset(atom.variables))
        stats.append(
            ConcreteStatistic(AbstractStatistic(full, 1.0), b_card, atom)
        )
        if b_l2 is not None:
            stats.append(
                ConcreteStatistic(
                    AbstractStatistic(conds[name], 2.0), b_l2, atom
                )
            )
    return StatisticsSet(stats)


TRIANGLE = parse_query("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)")


class TestTriangleOracles:
    def test_agm_from_cardinalities(self):
        # |R|=|S|=|T|=2^10 → AGM bound 2^15 (Eq. 2)
        result = lp_bound(_triangle_stats(10.0), query=TRIANGLE)
        assert result.log2_bound == pytest.approx(15.0)

    def test_l2_bound_eq4(self):
        # ℓ2 norms 2^4 each → (Π ℓ2²)^{1/3} = 2^8 (Eq. 4); cardinalities
        # large enough not to matter
        result = lp_bound(_triangle_stats(100.0, b_l2=4.0), query=TRIANGLE)
        assert result.log2_bound == pytest.approx(8.0)
        assert result.norms_used() == [2.0]

    def test_duals_match_eq4_weights(self):
        result = lp_bound(_triangle_stats(100.0, b_l2=4.0), query=TRIANGLE)
        weights = [w for _, w in result.used_statistics()]
        assert weights == pytest.approx([2 / 3] * 3)

    def test_min_of_families(self):
        # with tight cardinalities the AGM bound wins over loose ℓ2
        result = lp_bound(_triangle_stats(2.0, b_l2=50.0), query=TRIANGLE)
        assert result.log2_bound == pytest.approx(3.0)


class TestCones:
    @pytest.mark.parametrize("cone", ["polymatroid", "normal"])
    def test_explicit_cones_agree_on_simple_stats(self, cone):
        result = lp_bound(
            _triangle_stats(10.0, b_l2=4.0), query=TRIANGLE, cone=cone
        )
        assert result.status == "optimal"
        assert result.log2_bound == pytest.approx(8.0)
        assert result.cone == cone

    def test_auto_picks_normal_for_simple(self):
        result = lp_bound(_triangle_stats(10.0), query=TRIANGLE, cone="auto")
        assert result.cone == "normal"

    def test_auto_picks_polymatroid_for_non_simple(self):
        atom = Atom("T", ("a", "b", "c"))
        stat = ConcreteStatistic(
            AbstractStatistic(
                Conditional(frozenset("c"), frozenset({"a", "b"})), 2.0
            ),
            3.0,
            atom,
        )
        card = ConcreteStatistic(
            AbstractStatistic(Conditional(frozenset({"a", "b", "c"})), 1.0),
            5.0,
            atom,
        )
        result = lp_bound([card, stat], variables=("a", "b", "c"))
        assert result.cone == "polymatroid"
        assert result.status == "optimal"

    def test_modular_cone_unsound_in_general(self):
        # Appendix B: checking only modular functions can yield an invalid,
        # smaller "bound" — Example B.1's 2/3-weights phenomenon
        atoms = {"R": Atom("R", ("u", "v")), "S": Atom("S", ("v", "u"))}
        stats = StatisticsSet(
            [
                ConcreteStatistic(
                    AbstractStatistic(
                        Conditional(frozenset("v"), frozenset("u")), 2.0
                    ),
                    0.5 * math.log2(64),
                    atoms["R"],
                ),
                ConcreteStatistic(
                    AbstractStatistic(
                        Conditional(frozenset("u"), frozenset("v")), 2.0
                    ),
                    0.5 * math.log2(64),
                    atoms["S"],
                ),
            ]
        )
        modular = lp_bound(stats, variables=("u", "v"), cone="modular")
        normal = lp_bound(stats, variables=("u", "v"), cone="normal")
        # modular claims N^{2/3}-ish; the sound bound is N
        assert modular.log2_bound < normal.log2_bound - 1.0

    def test_unknown_cone_rejected(self):
        with pytest.raises(ValueError, match="cone"):
            lp_bound(_triangle_stats(1.0), query=TRIANGLE, cone="banana")

    def test_cones_constant(self):
        assert set(CONES) == {"auto", "polymatroid", "normal", "modular"}


class TestEdgeCases:
    def test_unbounded_without_statistics(self):
        result = lp_bound(
            StatisticsSet([]), variables=("x", "y"), cone="polymatroid"
        )
        assert result.status == "unbounded"
        assert result.log2_bound == math.inf
        assert result.bound == math.inf

    def test_unbounded_with_uncovered_variable(self):
        # only x is constrained; y floats free
        stat = ConcreteStatistic(
            AbstractStatistic(Conditional(frozenset("x")), 1.0),
            3.0,
            Atom("R", ("x", "y")),
        )
        result = lp_bound([stat], variables=("x", "y"))
        assert result.status == "unbounded"

    def test_requires_variables(self):
        with pytest.raises(ValueError, match="variables"):
            lp_bound(StatisticsSet([]))

    def test_variables_from_statistics(self):
        stat = ConcreteStatistic(
            AbstractStatistic(Conditional(frozenset({"x", "y"})), 1.0),
            3.0,
            Atom("R", ("x", "y")),
        )
        result = lp_bound([stat])
        assert set(result.variables) == {"x", "y"}
        assert result.log2_bound == pytest.approx(3.0)

    def test_extra_inequalities_need_polymatroid_cone(self):
        import numpy as np

        with pytest.raises(ValueError, match="polymatroid"):
            lp_bound(
                _triangle_stats(1.0),
                query=TRIANGLE,
                cone="normal",
                extra_inequalities=[np.zeros(8)],
            )

    def test_extra_inequality_shape_checked(self):
        import numpy as np

        with pytest.raises(ValueError, match="length"):
            lp_bound(
                _triangle_stats(1.0),
                query=TRIANGLE,
                cone="polymatroid",
                extra_inequalities=[np.zeros(4)],
            )

    def test_zero_bound_statistics(self):
        # b = 0 means a single tuple: output bounded by 1 (log2 = 0)
        result = lp_bound(_triangle_stats(0.0), query=TRIANGLE)
        assert result.log2_bound == pytest.approx(0.0)
        assert result.bound == pytest.approx(1.0)


class TestSoundnessOnData:
    """Theorem 1.1: the bound dominates the true output size."""

    def test_bound_dominates_truth_triangle(self, graph_db, triangle_query):
        from repro.evaluation import count_query

        stats = collect_statistics(
            triangle_query, graph_db, ps=[1.0, 2.0, 3.0, math.inf]
        )
        true_count = count_query(triangle_query, graph_db)
        for ps in ([1.0], [1.0, math.inf], [1.0, 2.0], [1.0, 2.0, 3.0, math.inf]):
            result = lp_bound(stats.restrict_ps(ps), query=triangle_query)
            assert result.log2_bound >= math.log2(max(1, true_count)) - 1e-9

    def test_bound_dominates_truth_join(self, two_table_db, one_join_query):
        from repro.evaluation import acyclic_count

        stats = collect_statistics(
            one_join_query, two_table_db, ps=[1.0, 2.0, math.inf]
        )
        true_count = acyclic_count(one_join_query, two_table_db)
        result = lp_bound(stats, query=one_join_query)
        assert result.log2_bound >= math.log2(max(1, true_count)) - 1e-9

    def test_more_norms_never_hurt(self, graph_db, triangle_query):
        stats = collect_statistics(
            triangle_query, graph_db, ps=[1.0, 2.0, 3.0, 4.0, math.inf]
        )
        previous = math.inf
        for ps in (
            [1.0],
            [1.0, math.inf],
            [1.0, 2.0, math.inf],
            [1.0, 2.0, 3.0, 4.0, math.inf],
        ):
            value = lp_bound(stats.restrict_ps(ps), query=triangle_query).log2_bound
            assert value <= previous + 1e-9
            previous = value
