"""Unit tests for dual certificates (Theorem 1.1 product form)."""

import math

import pytest

from repro.core import collect_statistics, lp_bound
from repro.core.certificates import (
    certificate_gap,
    product_form,
    verify_certificate,
)


@pytest.fixture
def triangle_result(graph_db, triangle_query):
    stats = collect_statistics(
        triangle_query, graph_db, ps=[1.0, 2.0, math.inf]
    )
    return lp_bound(stats, query=triangle_query)


class TestCertificates:
    def test_verify_at_optimum(self, triangle_result):
        assert triangle_result.status == "optimal"
        assert verify_certificate(triangle_result)

    def test_gap_is_tiny(self, triangle_result):
        assert certificate_gap(triangle_result) < 1e-6

    def test_product_form_mentions_norms(self, triangle_result):
        text = product_form(triangle_result)
        assert "||deg_R(" in text
        assert "^" in text

    def test_witness_inequality_renders(self, triangle_result):
        text = triangle_result.witness_inequality()
        assert "≥ h(" in text

    def test_norms_used_subset_of_requested(self, triangle_result):
        assert set(triangle_result.norms_used()) <= {1.0, 2.0, math.inf}

    def test_used_statistics_weights_positive(self, triangle_result):
        for _, weight in triangle_result.used_statistics():
            assert weight > 0

    def test_entropy_vector_is_primal_witness(self, triangle_result):
        h = triangle_result.entropy_vector()
        assert h.full == pytest.approx(triangle_result.log2_bound)
        assert h.is_polymatroid(tol=1e-6)

    def test_gap_raises_without_certificate(self):
        from repro.core.conditionals import StatisticsSet
        from repro.core.lp_bound import lp_bound as lb

        unbounded = lb(StatisticsSet([]), variables=("x",), cone="polymatroid")
        with pytest.raises(ValueError):
            certificate_gap(unbounded)
        assert not verify_certificate(unbounded)
        assert product_form(unbounded) == "1"
