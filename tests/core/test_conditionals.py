"""Unit tests for the statistics language and collection."""

import math

import pytest

from repro.core.conditionals import (
    AbstractStatistic,
    ConcreteStatistic,
    Conditional,
    StatisticsSet,
    collect_statistics,
)
from repro.query.query import Atom
from repro.relational import Database, Relation


class TestConditional:
    def test_requires_nonempty_v(self):
        with pytest.raises(ValueError):
            Conditional(frozenset())

    def test_simple_definition(self):
        assert Conditional(frozenset("x")).is_simple
        assert Conditional(frozenset("x"), frozenset("y")).is_simple
        assert not Conditional(frozenset("x"), frozenset({"y", "z"})).is_simple

    def test_variables_union(self):
        c = Conditional(frozenset("x"), frozenset("y"))
        assert c.variables == frozenset({"x", "y"})

    def test_str(self):
        assert str(Conditional(frozenset("x"), frozenset("y"))) == "(x|y)"
        assert str(Conditional(frozenset("x"))) == "(x|∅)"


class TestAbstractStatistic:
    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            AbstractStatistic(Conditional(frozenset("x")), 0.0)

    def test_str_infinity(self):
        s = AbstractStatistic(Conditional(frozenset("x")), math.inf)
        assert "ℓ∞" in str(s)


class TestConcreteStatistic:
    def test_guard_must_cover(self):
        with pytest.raises(ValueError, match="cover"):
            ConcreteStatistic(
                AbstractStatistic(Conditional(frozenset("z")), 1.0),
                1.0,
                Atom("R", ("x", "y")),
            )

    def test_measured_log2(self):
        db = Database({"R": Relation(("a", "b"), [(1, 1), (1, 2), (2, 1)])})
        stat = ConcreteStatistic(
            AbstractStatistic(
                Conditional(frozenset("y"), frozenset("x")), math.inf
            ),
            5.0,
            Atom("R", ("x", "y")),
        )
        assert stat.measured_log2(db) == pytest.approx(1.0)  # max degree 2
        assert stat.holds_on(db)

    def test_measured_with_repeated_variable(self):
        # R(x, x): only the diagonal rows count
        db = Database({"R": Relation(("a", "b"), [(1, 1), (1, 2), (3, 3)])})
        stat = ConcreteStatistic(
            AbstractStatistic(Conditional(frozenset("x")), 1.0),
            5.0,
            Atom("R", ("x", "x")),
        )
        assert stat.measured_log2(db) == pytest.approx(1.0)  # {1, 3}

    def test_bound_linear(self):
        stat = ConcreteStatistic(
            AbstractStatistic(Conditional(frozenset("x")), 1.0),
            3.0,
            Atom("R", ("x",)),
        )
        assert stat.bound == pytest.approx(8.0)


class TestStatisticsSet:
    def _stat(self, p, b=1.0):
        return ConcreteStatistic(
            AbstractStatistic(Conditional(frozenset("x")), p),
            b,
            Atom("R", ("x",)),
        )

    def test_restrict_ps(self):
        s = StatisticsSet([self._stat(1.0), self._stat(2.0), self._stat(math.inf)])
        assert len(s.restrict_ps([1.0])) == 1
        assert len(s.restrict_ps([1.0, math.inf])) == 2

    def test_norms_used(self):
        s = StatisticsSet([self._stat(1.0), self._stat(2.0)])
        assert s.norms_used == {1.0, 2.0}

    def test_deduplicated_keeps_tightest(self):
        s = StatisticsSet([self._stat(1.0, b=3.0), self._stat(1.0, b=2.0)])
        d = s.deduplicated()
        assert len(d) == 1
        assert d[0].log2_bound == 2.0

    def test_add_and_merge(self):
        s = StatisticsSet([self._stat(1.0)])
        assert len(s.add(self._stat(2.0))) == 2
        assert len(s.merged(StatisticsSet([self._stat(3.0)]))) == 2

    def test_is_simple(self):
        s = StatisticsSet([self._stat(1.0)])
        assert s.is_simple
        non_simple = ConcreteStatistic(
            AbstractStatistic(
                Conditional(frozenset("z"), frozenset({"x", "y"})), 1.0
            ),
            1.0,
            Atom("T", ("x", "y", "z")),
        )
        assert not s.add(non_simple).is_simple


class TestCollectStatistics:
    def test_collects_per_atom_and_variable(self, two_table_db, one_join_query):
        stats = collect_statistics(
            one_join_query, two_table_db, ps=[2.0, math.inf]
        )
        # per atom: 1 cardinality + (join var y): 1 distinct count + 2 norms
        assert len(stats) == 2 * (1 + 1 + 2)
        assert stats.is_simple

    def test_join_variables_only(self, two_table_db, one_join_query):
        all_vars = collect_statistics(
            one_join_query, two_table_db, ps=[2.0], join_variables_only=False
        )
        join_only = collect_statistics(
            one_join_query, two_table_db, ps=[2.0], join_variables_only=True
        )
        assert len(all_vars) > len(join_only)

    def test_measured_bounds_hold(self, two_table_db, one_join_query):
        stats = collect_statistics(
            one_join_query, two_table_db, ps=[1.0, 2.0, 3.0, math.inf]
        )
        assert stats.holds_on(two_table_db)
        assert two_table_db.satisfies(stats)

    def test_self_join_uses_both_bindings(self, graph_db, triangle_query):
        stats = collect_statistics(triangle_query, graph_db, ps=[2.0])
        conditionals = {str(s.conditional) for s in stats}
        # all three rotated conditionals appear
        assert "(y|x)" in conditionals or "(x|y)" in conditionals
        assert len(conditionals) >= 6
