"""Unit tests for the precomputed-statistics catalog."""

import math

import pytest

from repro.core import StatisticsCatalog, collect_statistics, lp_bound
from repro.query import parse_query


class TestCaching:
    def test_sequence_cached(self, graph_db):
        catalog = StatisticsCatalog(graph_db)
        first = catalog.sequence("R", ["x"], ["y"])
        second = catalog.sequence("R", ["x"], ["y"])
        assert first is second
        assert catalog.cached_sequences() == 1

    def test_norms_share_one_sequence(self, graph_db):
        catalog = StatisticsCatalog(graph_db)
        for p in (1.0, 2.0, 3.0, 17.0, math.inf):
            catalog.log2_norm("R", ["x"], ["y"], p)
        assert catalog.cached_sequences() == 1
        assert catalog.cached_norms() == 5

    def test_norm_values_match_direct(self, graph_db):
        from repro.core.degree import degree_sequence
        from repro.core.norms import log2_norm

        catalog = StatisticsCatalog(graph_db)
        seq = degree_sequence(graph_db["R"], ["x"], ["y"])
        for p in (1.0, 2.5, math.inf):
            assert catalog.log2_norm("R", ["x"], ["y"], p) == pytest.approx(
                log2_norm(seq, p)
            )


class TestStatisticsFor:
    def test_matches_collect_statistics(self, graph_db, triangle_query):
        catalog = StatisticsCatalog(graph_db)
        ps = [1.0, 2.0, 3.0, math.inf]
        from_catalog = catalog.statistics_for(triangle_query, ps=ps)
        direct = collect_statistics(triangle_query, graph_db, ps=ps)
        def key(s):
            return (str(s.conditional), s.p, s.guard.relation)

        a = sorted(((key(s), round(s.log2_bound, 9)) for s in from_catalog))
        b = sorted(((key(s), round(s.log2_bound, 9)) for s in direct))
        assert a == b

    def test_bounds_agree_across_queries_sharing_cache(self, graph_db):
        catalog = StatisticsCatalog(graph_db)
        q1 = parse_query("Q(x,y,z) :- R(x,y), R(y,z)")
        q2 = parse_query("Q(x,y,z) :- R(x,y), R(y,z), R(z,x)")
        ps = [1.0, 2.0, math.inf]
        b1 = lp_bound(catalog.statistics_for(q1, ps=ps), query=q1)
        sequences_after_first = catalog.cached_sequences()
        b2 = lp_bound(catalog.statistics_for(q2, ps=ps), query=q2)
        # the triangle reuses the one-join's sequences (same conditionals)
        assert catalog.cached_sequences() == sequences_after_first
        assert b1.status == b2.status == "optimal"
        d1 = lp_bound(collect_statistics(q1, graph_db, ps=ps), query=q1)
        d2 = lp_bound(collect_statistics(q2, graph_db, ps=ps), query=q2)
        assert b1.log2_bound == pytest.approx(d1.log2_bound)
        assert b2.log2_bound == pytest.approx(d2.log2_bound)

    def test_repeated_variable_atom_fallback(self, graph_db):
        catalog = StatisticsCatalog(graph_db)
        q = parse_query("Q(x,y) :- R(x,x), R(x,y)")
        stats = catalog.statistics_for(q, ps=[1.0, 2.0])
        assert len(stats) > 0
        assert stats.holds_on(graph_db)
