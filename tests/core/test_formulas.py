"""Unit tests for the paper's closed-form bounds, cross-checked with the LP.

Each closed form is an instance of Theorem 1.1; the LP optimises over all
instances, so LP ≤ closed form always, with equality when the paper says
the formula is optimal for the given statistics.
"""

import math

import pytest

from repro.core import formulas
from repro.core.conditionals import (
    AbstractStatistic,
    ConcreteStatistic,
    Conditional,
    StatisticsSet,
)
from repro.core.lp_bound import lp_bound
from repro.query import parse_query
from repro.query.query import Atom


class TestTriangleForms:
    def test_agm(self):
        assert formulas.agm_triangle(10, 10, 10) == pytest.approx(15.0)

    def test_eq4(self):
        assert formulas.triangle_l2(4, 4, 4) == pytest.approx(8.0)

    def test_eq5(self):
        assert formulas.triangle_l3(3, 3, 10) == pytest.approx(
            (9 + 9 + 50) / 6
        )


class TestJoinForms:
    def test_agm(self):
        assert formulas.join_agm(5, 7) == pytest.approx(12.0)

    def test_panda_takes_min(self):
        assert formulas.join_panda(10, 12, 2, 3) == pytest.approx(
            min(12 + 2, 10 + 3)
        )

    def test_eq18(self):
        assert formulas.join_l2(4.5, 5.5) == pytest.approx(10.0)

    def test_eq48_special_cases(self):
        # p=q=2 reduces to Eq. 18 (M exponent vanishes)
        assert formulas.join_lp_lq_distinct(4, 5, 99, 2, 2) == pytest.approx(9)
        # p=1, q=∞ reduces to ℓ1·ℓ∞
        assert formulas.join_lp_lq_distinct(
            4, 2, 99, 1, math.inf
        ) == pytest.approx(6)

    def test_eq48_rejects_bad_pq(self):
        with pytest.raises(ValueError):
            formulas.join_lp_lq_distinct(1, 1, 1, 1.5, 2)

    def test_eq19_specializations(self):
        # p=q=2: exponent q/(p(q−1)) = 1 → ℓ2·ℓ2, |S| exponent 0
        assert formulas.join_lp_lq(4, 5, 99, 2, 2) == pytest.approx(9)
        # q=∞: exponent 1/p
        assert formulas.join_lp_lq(4, 8, 6, 2, math.inf) == pytest.approx(
            4 + 0.5 * 8 + 0.5 * 6
        )

    def test_eq19_rejects_bad_pq(self):
        with pytest.raises(ValueError):
            formulas.join_lp_lq(1, 1, 1, 2, 1.5)

    def test_dsb_gap_certificate_is_eq19_p3_q2(self):
        l3_r, log2_s, l2_s = 2.0, 9.0, 4.0
        assert formulas.dsb_gap_certificate(
            l3_r, log2_s, l2_s
        ) == pytest.approx(formulas.join_lp_lq(l3_r, l2_s, log2_s, 3, 2))


class TestChainAndCycle:
    def test_chain_requires_p_ge_2(self):
        with pytest.raises(ValueError):
            formulas.chain_bound(1, 1, [], 1, 1.5)

    def test_chain_p2_drops_first_factor(self):
        # p=2: |R1|^0 — bound is (2·ℓ2 + 2·ℓ2)/2
        assert formulas.chain_bound(99, 3, [], 4, 2) == pytest.approx(
            (2 * 3 + 2 * 4) / 2
        )

    def test_cycle_bound_eq21(self):
        assert formulas.cycle_bound([3, 3, 3], 2) == pytest.approx(6.0)

    def test_cycle_bound_rejects_inf(self):
        with pytest.raises(ValueError):
            formulas.cycle_bound([1], math.inf)

    def test_cycle_agm_panda(self):
        assert formulas.cycle_agm([10, 10, 10]) == pytest.approx(15)
        assert formulas.cycle_panda(10, 2, 3) == pytest.approx(12)

    def test_loomis_whitney(self):
        assert formulas.loomis_whitney_l2(3, 8, 3, 8) == pytest.approx(
            (6 + 8 + 6 + 8) / 4
        )


class TestClosedFormsVsLp:
    """The LP must match the paper's formula when that formula is optimal."""

    def test_join_l2_matches_lp(self):
        r_atom, s_atom = Atom("R", ("x", "y")), Atom("S", ("y", "z"))
        l2 = 4.0
        stats = StatisticsSet(
            [
                ConcreteStatistic(
                    AbstractStatistic(
                        Conditional(frozenset("x"), frozenset("y")), 2.0
                    ),
                    l2,
                    r_atom,
                ),
                ConcreteStatistic(
                    AbstractStatistic(
                        Conditional(frozenset("z"), frozenset("y")), 2.0
                    ),
                    l2,
                    s_atom,
                ),
            ]
        )
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
        result = lp_bound(stats, query=q)
        assert result.log2_bound == pytest.approx(formulas.join_l2(l2, l2))

    def test_cycle_bound_matches_lp(self):
        from repro.experiments.cycle import cycle_query

        q = cycle_query(4)  # p = 3
        lq = 5.0
        stats = []
        for i, atom in enumerate(q.atoms):
            stats.append(
                ConcreteStatistic(
                    AbstractStatistic(
                        Conditional(
                            frozenset({atom.variables[1]}),
                            frozenset({atom.variables[0]}),
                        ),
                        3.0,
                    ),
                    lq,
                    atom,
                )
            )
        result = lp_bound(StatisticsSet(stats), query=q)
        assert result.log2_bound == pytest.approx(
            formulas.cycle_bound([lq] * 4, 3)
        )
