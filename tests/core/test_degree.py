"""Unit tests for degree sequences (Sec. 1.2 definitions)."""

import numpy as np
import pytest

from repro.core.degree import average_degree, degree_sequence, max_degree
from repro.relational import Relation


@pytest.fixture
def rel():
    # y=10 pairs with x ∈ {1,2,3}; y=20 with x=4
    return Relation(("x", "y"), [(1, 10), (2, 10), (3, 10), (4, 20)])


class TestDegreeSequence:
    def test_sorted_non_increasing(self, rel):
        seq = degree_sequence(rel, ["x"], ["y"])
        assert list(seq) == [3, 1]

    def test_other_direction(self, rel):
        seq = degree_sequence(rel, ["y"], ["x"])
        assert list(seq) == [1, 1, 1, 1]

    def test_empty_u_gives_distinct_count(self, rel):
        # deg(V | ∅) is the single value |Π_V(R)| — the paper's convention
        # that cardinalities are ℓ1 statistics
        seq = degree_sequence(rel, ["x"])
        assert list(seq) == [4]
        seq = degree_sequence(rel, ["y"])
        assert list(seq) == [2]

    def test_empty_v_behaviour(self, rel):
        # deg(∅-ish | U): ones, one per distinct U value
        seq = degree_sequence(rel, [], ["y"])
        assert list(seq) == [1, 1]

    def test_duplicates_in_projection_collapse(self):
        r = Relation(("x", "y", "z"), [(1, 10, 0), (1, 10, 1), (1, 20, 0)])
        # distinct y per x: still 2 (projection semantics)
        assert list(degree_sequence(r, ["y"], ["x"])) == [2]

    def test_empty_relation(self):
        r = Relation(("x", "y"), [])
        assert degree_sequence(r, ["x"], ["y"]).size == 0

    def test_multi_attribute_sides(self):
        r = Relation(
            ("a", "b", "c"),
            [(1, 1, 1), (1, 2, 1), (2, 1, 1), (2, 1, 2)],
        )
        seq = degree_sequence(r, ["b", "c"], ["a"])
        assert list(seq) == [2, 2]

    def test_dtype_is_integer(self, rel):
        assert degree_sequence(rel, ["x"], ["y"]).dtype == np.int64


class TestHelpers:
    def test_max_degree(self, rel):
        assert max_degree(rel, ["x"], ["y"]) == 3

    def test_max_degree_empty(self):
        assert max_degree(Relation(("x", "y"), []), ["x"], ["y"]) == 0

    def test_average_degree(self, rel):
        assert average_degree(rel, ["x"], ["y"]) == pytest.approx(2.0)

    def test_average_degree_empty(self):
        assert average_degree(Relation(("x", "y"), []), ["x"], ["y"]) == 0.0
