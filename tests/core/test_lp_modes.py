"""The REPRO_LP solve-mode machinery and the persistent/one-shot contract.

``REPRO_LP=oneshot`` is byte-for-byte the scipy ``linprog`` path the
whole suite already exercises, so these tests pin down the rest:

* env parsing, ``set_lp_mode`` validation ordering, ``forced_lp_mode``
  save/restore;
* graceful degradation when highspy is absent (``auto`` falls back,
  ``persistent`` raises :class:`LpUnavailableError` naming the extra);
* the differential contract: the warm-started persistent path agrees
  with the one-shot oracle to 1e-6 on every cone and query shape
  (run only where highspy is installed — the CI service leg).
"""

import math

import pytest

from repro import Database, collect_statistics, lp_bound, parse_query
from repro.core import (
    LP_MODES,
    BoundSolver,
    LpUnavailableError,
    active_lp_mode,
    configured_lp_mode,
    forced_lp_mode,
    highspy_available,
    set_lp_mode,
)
import importlib

# the module, not the identically-named function repro.core re-exports
lp_mod = importlib.import_module("repro.core.lp_bound")
from repro.datasets import power_law_graph

PS = [1.0, 2.0, 3.0, math.inf]


@pytest.fixture(autouse=True)
def _restore_lp_mode():
    previous = lp_mod._LP_ACTIVE
    yield
    lp_mod._LP_ACTIVE = previous


@pytest.fixture
def skew_db():
    return Database(
        {
            "R": power_law_graph(80, 400, 0.9, seed=3),
            "S": power_law_graph(80, 300, 0.2, seed=4),
        }
    )


class TestModeConfiguration:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_LP", raising=False)
        assert configured_lp_mode() == "auto"

    @pytest.mark.parametrize(
        "raw", ["oneshot", "ONESHOT", " persistent ", "Auto", ""]
    )
    def test_parses_env(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_LP", raw)
        assert configured_lp_mode() in LP_MODES

    def test_rejects_unknown_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LP", "warp")
        with pytest.raises(ValueError, match="REPRO_LP"):
            configured_lp_mode()

    def test_set_mode_rejects_unknown_without_switching(self):
        before = active_lp_mode()
        with pytest.raises(ValueError, match="not one of"):
            set_lp_mode("warp")
        assert active_lp_mode() == before

    def test_active_mode_is_resolved(self):
        # auto never survives resolution: the active mode is concrete
        assert active_lp_mode() in ("persistent", "oneshot")
        expected = "persistent" if highspy_available() else "oneshot"
        assert set_lp_mode("auto") == expected

    def test_forced_mode_restores(self):
        before = active_lp_mode()
        with forced_lp_mode("oneshot") as mode:
            assert mode == "oneshot"
            assert active_lp_mode() == "oneshot"
        assert active_lp_mode() == before

    def test_solver_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="lp_mode"):
            BoundSolver(lp_mode="warp")

    def test_pinned_solver_ignores_process_mode(self):
        solver = BoundSolver(lp_mode="oneshot")
        with forced_lp_mode("oneshot"):
            assert solver.resolved_lp_mode() == "oneshot"
        unpinned = BoundSolver()
        with forced_lp_mode("oneshot"):
            assert unpinned.resolved_lp_mode() == "oneshot"


@pytest.mark.skipif(
    highspy_available(), reason="highspy installed: degradation n/a"
)
class TestWithoutHighspy:
    def test_auto_degrades_to_oneshot(self):
        assert set_lp_mode("auto") == "oneshot"

    def test_persistent_raises_naming_the_extra(self):
        with pytest.raises(LpUnavailableError, match=r"repro\[service\]"):
            set_lp_mode("persistent")

    def test_pinned_persistent_solver_fails_at_solve_time(
        self, skew_db
    ):
        query = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
        stats = collect_statistics(query, skew_db, ps=PS)
        solver = BoundSolver(lp_mode="persistent")
        with pytest.raises(LpUnavailableError):
            solver.solve(stats, query=query)


class TestOneshotIsTheOracle:
    def test_bit_identical_to_lp_bound(self, skew_db):
        query = parse_query("Q(x,y,z) :- R(x,y), R(y,z), R(z,x)")
        stats = collect_statistics(query, skew_db, ps=PS)
        direct = lp_bound(stats, query=query)
        with forced_lp_mode("oneshot"):
            served = BoundSolver().solve(stats, query=query)
        assert served.log2_bound == direct.log2_bound
        assert served.cone == direct.cone
        assert served.status == direct.status


DIFFERENTIAL_QUERIES = [
    "triangle(x,y,z) :- R(x,y), R(y,z), R(z,x)",
    "chain(a,b,c,d) :- R(a,b), S(b,c), R(c,d)",
    "star(a,b,c,d) :- R(a,b), S(a,c), R(a,d)",
    "cycle4(a,b,c,d) :- R(a,b), S(b,c), R(c,d), S(d,a)",
    "selfjoin(x,y) :- R(x,y), S(y,x)",
    "one(x,y) :- R(x,y)",
]


@pytest.mark.skipif(
    not highspy_available(), reason="persistent path needs highspy"
)
class TestPersistentDifferential:
    """The warm path must agree with scipy to LP-solver tolerance."""

    @pytest.mark.parametrize("text", DIFFERENTIAL_QUERIES)
    @pytest.mark.parametrize("cone", ["auto", "polymatroid", "normal"])
    def test_agrees_with_oneshot(self, skew_db, text, cone):
        query = parse_query(text)
        stats = collect_statistics(query, skew_db, ps=PS)
        with forced_lp_mode("oneshot"):
            oracle = BoundSolver().solve(stats, query=query, cone=cone)
        with forced_lp_mode("persistent"):
            warm = BoundSolver().solve(stats, query=query, cone=cone)
        assert warm.status == oracle.status
        assert warm.cone == oracle.cone
        if oracle.status == "optimal":
            assert warm.log2_bound == pytest.approx(
                oracle.log2_bound, abs=1e-6
            )

    def test_model_reuse_across_b_swaps(self):
        # same LP structure, different statistics vectors: one model,
        # many warm re-solves
        query = parse_query("triangle(x,y,z) :- R(x,y), R(y,z), R(z,x)")
        solver = BoundSolver(lp_mode="persistent", memoize_results=False)
        bounds = []
        for seed in (11, 12, 13, 14):
            db = Database({"R": power_law_graph(60, 250, 0.7, seed=seed)})
            stats = collect_statistics(query, db, ps=PS)
            with forced_lp_mode("oneshot"):
                oracle = lp_bound(stats, query=query)
            bounds.append(
                (solver.solve(stats, query=query).log2_bound,
                 oracle.log2_bound)
            )
        assert solver.cached_models() == 1
        assert solver.persistent_resolves == 4
        for warm, oracle in bounds:
            assert warm == pytest.approx(oracle, abs=1e-6)

    def test_family_slices_use_persistent_path(self, skew_db):
        query = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
        stats = collect_statistics(query, skew_db, ps=PS)
        solver = BoundSolver(lp_mode="persistent")
        full = solver.solve(stats, query=query)
        agm = solver.solve_family(stats, (1.0,), query=query)
        assert agm.log2_bound >= full.log2_bound - 1e-9
