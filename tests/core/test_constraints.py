"""Unit tests for FD/key statistics (the [11,16] connection)."""

import math

import pytest

from repro.core import collect_statistics, lp_bound
from repro.core.constraints import (
    fd_statistic,
    key_statistic,
    key_statistics_for_query,
)
from repro.query import parse_query
from repro.query.query import Atom
from repro.relational import Database, Relation


@pytest.fixture
def keyed_db():
    # T(id, v): id is a key; F(id, w): many w per id
    t = Relation(("a", "b"), [(i, i % 3) for i in range(8)])
    f = Relation(("a", "b"), [(i % 8, j) for i in range(8) for j in range(4)])
    return Database({"T": t, "F": f})


class TestFdStatistic:
    def test_is_linf_with_zero_bound(self):
        stat = fd_statistic(Atom("T", ("x", "y")), ["x"], ["y"])
        assert stat.p == math.inf
        assert stat.log2_bound == 0.0
        assert stat.bound == 1.0

    def test_holds_on_keyed_data(self, keyed_db):
        stat = fd_statistic(Atom("T", ("x", "y")), ["x"], ["y"])
        assert stat.holds_on(keyed_db)

    def test_fails_on_fanout_data(self, keyed_db):
        stat = fd_statistic(Atom("F", ("x", "y")), ["x"], ["y"])
        assert not stat.holds_on(keyed_db)

    def test_overlap_trimmed(self):
        stat = fd_statistic(Atom("T", ("x", "y")), ["x"], ["x", "y"])
        assert stat.conditional.v == frozenset({"y"})

    def test_vacuous_rejected(self):
        with pytest.raises(ValueError):
            fd_statistic(Atom("T", ("x", "y")), ["x", "y"], ["x"])

    def test_empty_dependent_rejected(self):
        with pytest.raises(ValueError):
            fd_statistic(Atom("T", ("x", "y")), ["x"], [])


class TestKeyStatistic:
    def test_key_is_fd_to_rest(self):
        stat = key_statistic(Atom("T", ("x", "y", "z")), ["x"])
        assert stat.conditional.u == frozenset({"x"})
        assert stat.conditional.v == frozenset({"y", "z"})

    def test_key_outside_atom_rejected(self):
        with pytest.raises(ValueError):
            key_statistic(Atom("T", ("x", "y")), ["z"])

    def test_full_key_rejected(self):
        with pytest.raises(ValueError):
            key_statistic(Atom("T", ("x", "y")), ["x", "y"])


class TestQueryLevel:
    def test_statistics_for_query(self, keyed_db):
        q = parse_query("Q(m,v,w) :- T(m,v), F(m,w)")
        stats = key_statistics_for_query(q, {"T": [0]})
        assert len(stats) == 1
        assert stats.holds_on(keyed_db)

    def test_fd_tightens_the_bound(self, keyed_db):
        # without the key, |T ⋈ F| bound uses measured stats only;
        # declaring the key cannot make it worse and the LP stays sound
        q = parse_query("Q(m,v,w) :- T(m,v), F(m,w)")
        measured = collect_statistics(q, keyed_db, ps=[1.0])
        base = lp_bound(measured, query=q)
        with_key = lp_bound(
            measured.merged(key_statistics_for_query(q, {"T": [0]})), query=q
        )
        assert with_key.log2_bound <= base.log2_bound + 1e-9
        from repro.evaluation import acyclic_count

        truth = acyclic_count(q, keyed_db)
        assert with_key.log2_bound >= math.log2(truth) - 1e-9

    def test_key_recovers_pk_fk_bound(self, keyed_db):
        # with |F| and the T-key, the bound is exactly |F| (PK-FK join)
        q = parse_query("Q(m,v,w) :- T(m,v), F(m,w)")
        measured = collect_statistics(q, keyed_db, ps=[1.0])
        with_key = lp_bound(
            measured.merged(key_statistics_for_query(q, {"T": [0]})), query=q
        )
        assert with_key.log2_bound == pytest.approx(
            math.log2(len(keyed_db["F"])), abs=1e-6
        )
