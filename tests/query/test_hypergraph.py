"""Unit tests for hypergraph structure: acyclicity, girth, edge covers."""

import math

import pytest

from repro.query import (
    fractional_edge_cover,
    girth,
    is_alpha_acyclic,
    is_berge_acyclic,
    parse_query,
)
from repro.query.hypergraph import Hypergraph


class TestAlphaAcyclicity:
    def test_single_join_is_acyclic(self):
        assert is_alpha_acyclic(parse_query("R(x,y), S(y,z)"))

    def test_path_is_acyclic(self):
        assert is_alpha_acyclic(parse_query("R(a,b), S(b,c), T(c,d)"))

    def test_triangle_is_cyclic(self):
        assert not is_alpha_acyclic(parse_query("R(x,y), S(y,z), T(z,x)"))

    def test_triangle_with_covering_edge_is_acyclic(self):
        # α-acyclicity is not hereditary: adding the big atom removes it
        q = parse_query("W(x,y,z), R(x,y), S(y,z), T(z,x)")
        assert is_alpha_acyclic(q)

    def test_star_is_acyclic(self):
        q = parse_query("R(m,a), S(m,b), T(m,c), U(m,d)")
        assert is_alpha_acyclic(q)

    def test_four_cycle_is_cyclic(self):
        assert not is_alpha_acyclic(
            parse_query("R(a,b), S(b,c), T(c,d), U(d,a)")
        )


class TestBergeAcyclicity:
    def test_path_is_berge_acyclic(self):
        assert is_berge_acyclic(parse_query("R(a,b), S(b,c)"))

    def test_shared_pair_is_not_berge_acyclic(self):
        # two atoms sharing two variables form a Berge cycle
        assert not is_berge_acyclic(parse_query("R(x,y), S(x,y)"))

    def test_triangle_is_not_berge_acyclic(self):
        assert not is_berge_acyclic(parse_query("R(x,y), S(y,z), T(z,x)"))

    def test_berge_implies_alpha(self):
        q = parse_query("R(a,b), S(b,c), T(b,d)")
        assert is_berge_acyclic(q)
        assert is_alpha_acyclic(q)


class TestGirth:
    def test_triangle_girth_3(self):
        assert girth(parse_query("R(x,y), S(y,z), T(z,x)")) == 3

    def test_square_girth_4(self):
        assert girth(parse_query("R(a,b), S(b,c), T(c,d), U(d,a)")) == 4

    def test_forest_girth_inf(self):
        assert girth(parse_query("R(a,b), S(b,c)")) == math.inf

    def test_girth_rejects_ternary(self):
        with pytest.raises(ValueError):
            girth(parse_query("R(a,b,c)"))


class TestFractionalEdgeCover:
    def test_triangle_rho_star(self):
        value, x = fractional_edge_cover(
            parse_query("R(x,y), S(y,z), T(z,x)")
        )
        assert value == pytest.approx(1.5)
        assert x == pytest.approx([0.5, 0.5, 0.5])

    def test_single_join_rho_star(self):
        value, _ = fractional_edge_cover(parse_query("R(x,y), S(y,z)"))
        assert value == pytest.approx(2.0)

    def test_weighted_cover_is_agm_exponent(self):
        # triangle with |R|=|S|=2^10, |T|=2^2: cover puts weight on cheap T
        value, _ = fractional_edge_cover(
            parse_query("R(x,y), S(y,z), T(z,x)"), weights=[10.0, 10.0, 2.0]
        )
        # optimum: x_R = x_S = ... LP decides; must be ≤ naive 11
        assert value <= 11.0 + 1e-9
        assert value >= 10.0  # must cover x and z through R, S at least

    def test_star_cover_uses_all_leaves(self):
        q = parse_query("R(m,a), S(m,b), T(m,c)")
        value, _ = fractional_edge_cover(q)
        assert value == pytest.approx(3.0)

    def test_empty_hypergraph(self):
        value, x = Hypergraph([]).fractional_edge_cover()
        assert value == 0.0
        assert x.size == 0


class TestGyo:
    def test_gyo_residue_on_cycle(self):
        h = Hypergraph.of_query(parse_query("R(x,y), S(y,z), T(z,x)"))
        assert h.gyo_reduction()  # non-empty residue

    def test_gyo_empty_on_acyclic(self):
        h = Hypergraph.of_query(parse_query("R(x,y), S(y,z)"))
        assert h.gyo_reduction() == []
