"""Unit tests for Atom and ConjunctiveQuery."""

import pytest

from repro.query.query import Atom, ConjunctiveQuery


class TestAtom:
    def test_variable_set(self):
        a = Atom("R", ("x", "y", "x"))
        assert a.variable_set == frozenset({"x", "y"})
        assert a.arity == 3

    def test_str(self):
        assert str(Atom("R", ("x", "y"))) == "R(x, y)"

    def test_hashable(self):
        assert Atom("R", ("x",)) == Atom("R", ("x",))
        assert hash(Atom("R", ("x",))) == hash(Atom("R", ("x",)))

    def test_accepts_list_variables(self):
        assert Atom("R", ["x", "y"]).variables == ("x", "y")


class TestConjunctiveQuery:
    def test_requires_atoms(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([])

    def test_variables_in_first_appearance_order(self):
        q = ConjunctiveQuery([Atom("R", ("b", "a")), Atom("S", ("a", "c"))])
        assert q.variables == ("b", "a", "c")

    def test_num_variables(self):
        q = ConjunctiveQuery([Atom("R", ("x", "y")), Atom("S", ("y", "z"))])
        assert q.num_variables == 3

    def test_relation_names_deduplicated(self):
        q = ConjunctiveQuery([Atom("R", ("x", "y")), Atom("R", ("y", "z"))])
        assert q.relation_names == ("R",)

    def test_atoms_with_variable(self):
        q = ConjunctiveQuery([Atom("R", ("x", "y")), Atom("S", ("y", "z"))])
        assert len(q.atoms_with_variable("y")) == 2
        assert len(q.atoms_with_variable("x")) == 1

    def test_guards_for(self):
        q = ConjunctiveQuery([Atom("R", ("x", "y")), Atom("S", ("y", "z"))])
        guards = q.guards_for([frozenset({"x"}), frozenset({"y"})])
        assert [g.relation for g in guards] == ["R"]

    def test_str_rendering(self):
        q = ConjunctiveQuery(
            [Atom("R", ("x", "y")), Atom("S", ("y", "z"))], name="Q"
        )
        assert str(q) == "Q(x, y, z) = R(x, y) ∧ S(y, z)"

    def test_is_full(self):
        q = ConjunctiveQuery([Atom("R", ("x",))])
        assert q.is_full()
