"""Unit tests for the datalog-style parser."""

import pytest

from repro.query import parse_query


class TestParser:
    def test_full_form(self):
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z)")
        assert q.name == "Q"
        assert [a.relation for a in q.atoms] == ["R", "S"]
        assert q.variables == ("x", "y", "z")

    def test_body_only(self):
        q = parse_query("R(x,y), S(y,z)")
        assert q.name == "Q"
        assert q.num_variables == 3

    def test_custom_name(self):
        q = parse_query("triangle(a,b,c) :- R(a,b), R(b,c), R(c,a)")
        assert q.name == "triangle"

    def test_whitespace_tolerated(self):
        q = parse_query("  Q( x , y ) :-  R( x , y )  ")
        assert q.atoms[0].variables == ("x", "y")

    def test_repeated_variables(self):
        q = parse_query("R(x,x)")
        assert q.atoms[0].variables == ("x", "x")
        assert q.num_variables == 1

    def test_underscored_names(self):
        q = parse_query("movie_info(m, it)")
        assert q.atoms[0].relation == "movie_info"

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_query("not a query at all!")

    def test_rejects_empty_atom(self):
        with pytest.raises(ValueError):
            parse_query("R()")

    def test_rejects_missing_comma(self):
        with pytest.raises(ValueError):
            parse_query("R(x,y) S(y,z)")
